"""Incremental resource selection (Section 5).

Worker memories differ, so workers receive chunks of different sizes
(``mu_i x mu_i``) and no closed-form allocation exists.  The paper
pre-computes the allocation with a *step-by-step simulation*: selections
are made one chunk at a time against a model of the master port and of the
workers' ready times.

**Selection-time model** (chunk granularity).  Assigning the next chunk to
``P_i`` occupies the port for ``D_i = 2 mu_i t c_i`` seconds of A/B traffic
(plus ``mu_i^2 c_i`` when the variant counts the C-chunk send), starting at

    start = max(port_free, ready_i)

because the overlapped layout has no cross-chunk prefetch: a worker's next
chunk cannot stream in before the worker finished computing the previous
one (its C buffers and round buffers are still in use) -- this is the
"ready time" the paper insists on.  The worker then computes the chunk in
``mu_i^2 t w_i`` seconds, throttled by data arrival:

    comp_end = max(ready_i, start + lead) + mu_i^2 t w_i   (compute-bound)
    comp_end = start + D_i + mu_i^2 w_i                    (port-bound)

whichever is later, where ``lead`` is the time of the first round's
arrival.  In the port-bound limit the *local* ratio (chunk work over port
time consumed) reduces to ``mu_i / (2 c_i)`` -- precisely the
bandwidth-centric LP ordering key -- while overloading a worker degrades
both ratios through ``ready_i``, which is what makes the selection
memory-feasible where the LP is not.

Selection criteria (the paper's eight Het variants plus min-min):

* **global**: total work assigned so far divided by the completion time of
  the candidate chunk's last communication (maximize);
* **local**: the candidate chunk's work divided by the port time it
  occupies, idle waits included (maximize);
* each optionally with one-selection **look-ahead** (a candidate's score is
  the best pair score over all possible next selections), and optionally
  **counting the C-chunk send** in the simulated timeline;
* **min-min** (OMMOML): minimize the candidate chunk's completion time.

Grant bookkeeping: a worker selected ``ceil(r / mu_i)`` times has earned
``mu_i`` block columns of the real matrix and is granted the next free
column panel; the phase stops when every column is granted.  The same
machinery replays arbitrary sequences (e.g. round-robin for ORROML), so all
chunk-ordered algorithms share one phase-2 plan builder
(:func:`build_plan_from_sequence`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..core.blocks import BlockGrid, ceil_div
from ..core.chunks import Chunk, PanelAllocator, PanelCursor
from ..core.layout import overlapped_mu
from ..platform.model import Platform
from ..sim.plan import Plan
from ..sim.policies import ReadyPolicy, selection_order_priority
from .base import SchedulingError

__all__ = [
    "Variant",
    "ALL_VARIANTS",
    "usable_mus",
    "SelectionOutcome",
    "SelectionState",
    "incremental_selection",
    "min_min_selection",
    "round_robin_sequence",
    "build_plan_from_sequence",
]


@dataclass(frozen=True)
class Variant:
    """One of the eight Het selection variants."""

    scope: str  # "global" or "local"
    lookahead: bool
    count_c: bool

    def __post_init__(self) -> None:
        if self.scope not in ("global", "local"):
            raise ValueError(f"unknown scope {self.scope!r}")

    @property
    def label(self) -> str:
        la = "+la" if self.lookahead else ""
        cc = "+c" if self.count_c else ""
        return f"{self.scope}{la}{cc}"


#: The paper's eight variants: {global, local} x {look-ahead, not} x {C cost, not}.
ALL_VARIANTS: tuple[Variant, ...] = tuple(
    Variant(scope, la, cc)
    for scope in ("global", "local")
    for la in (False, True)
    for cc in (False, True)
)


def usable_mus(platform: Platform) -> list[int]:
    """Per-worker overlapped chunk side ``mu_i`` (0 when the worker lacks
    the minimum memory and must be excluded)."""
    mus = []
    for wk in platform:
        try:
            mus.append(overlapped_mu(wk.m))
        except ValueError:
            mus.append(0)
    return mus


@dataclass
class SelectionOutcome:
    """Result of a selection phase."""

    sequence: list[int]  # worker index per selection, in order
    mus: list[int]
    variant: Variant | None = None
    meta: dict = field(default_factory=dict)


class SelectionState:
    """O(p) analytic state of the selection-time model (see module doc).

    Candidate scoring uses :meth:`speculate` / :meth:`rollback`: one
    assignment only touches three scalars (``port_free``, ``ready[widx]``,
    ``total_work``), so a what-if is a delta-update plus an O(1) undo token
    instead of an O(p) :meth:`copy` per candidate.  Tokens must be rolled
    back in LIFO order when nested (look-ahead pairs).
    """

    __slots__ = ("platform", "grid", "mus", "count_c", "port_free", "ready", "total_work")

    def __init__(
        self, platform: Platform, grid: BlockGrid, mus: Sequence[int], count_c: bool
    ) -> None:
        self.platform = platform
        self.grid = grid
        self.mus = list(mus)
        self.count_c = count_c
        self.port_free = 0.0
        self.ready = [0.0] * platform.p
        self.total_work = 0

    def copy(self) -> "SelectionState":
        other = SelectionState.__new__(SelectionState)
        other.platform = self.platform
        other.grid = self.grid
        other.mus = self.mus
        other.count_c = self.count_c
        other.port_free = self.port_free
        other.ready = list(self.ready)
        other.total_work = self.total_work
        return other

    def chunk_work(self, widx: int) -> int:
        """Block updates of one idealized chunk on ``widx`` (clipped to r)."""
        mu = self.mus[widx]
        return min(mu, self.grid.r) * mu * self.grid.t

    def assign(self, widx: int) -> tuple[float, float]:
        """Commit one chunk to ``widx``; returns ``(comm_end, comp_end)``."""
        wk = self.platform[widx]
        mu = self.mus[widx]
        h = min(mu, self.grid.r)
        t = self.grid.t
        c_cost = (h * mu * wk.c) if self.count_c else 0.0
        data = (h + mu) * t * wk.c  # per round: h A blocks + mu B blocks
        start = max(self.port_free, self.ready[widx])
        comm_end = start + c_cost + data
        lead = c_cost + (h + mu) * wk.c  # first round delivered
        per_round = h * mu * wk.w
        comp_begin = max(self.ready[widx], start + lead)
        comp_end = max(comp_begin + t * per_round, comm_end + per_round)
        self.port_free = comm_end
        self.ready[widx] = comp_end
        self.total_work += self.chunk_work(widx)
        return comm_end, comp_end

    def speculate(self, widx: int) -> tuple[tuple, float, float]:
        """Commit one chunk to ``widx`` like :meth:`assign`, returning an
        undo token alongside ``(comm_end, comp_end)``."""
        token = (widx, self.port_free, self.ready[widx], self.total_work)
        comm_end, comp_end = self.assign(widx)
        return token, comm_end, comp_end

    def rollback(self, token: tuple) -> None:
        """Undo one :meth:`speculate` (LIFO order when nested)."""
        widx, port_free, ready_w, total_work = token
        self.port_free = port_free
        self.ready[widx] = ready_w
        self.total_work = total_work


def _score(state: SelectionState, widx: int, scope: str) -> tuple[float, tuple]:
    """Score of selecting ``widx`` next on ``state`` (higher = better).

    Leaves the speculative assignment applied; the caller must roll back
    the returned token (after any nested look-ahead speculation).
    """
    before = state.port_free
    token, comm_end, _ = state.speculate(widx)
    if scope == "global":
        score = state.total_work / comm_end if comm_end > 0 else float("inf")
    else:
        elapsed = comm_end - before
        score = state.chunk_work(widx) / elapsed if elapsed > 0 else float("inf")
    return score, token


def incremental_selection(
    platform: Platform, grid: BlockGrid, variant: Variant
) -> SelectionOutcome:
    """Run the paper's incremental selection under ``variant``."""
    mus = usable_mus(platform)
    usable = [i for i, mu in enumerate(mus) if mu >= 1]
    if not usable:
        raise SchedulingError("no worker has enough memory for the overlapped layout")

    state = SelectionState(platform, grid, mus, variant.count_c)

    def candidate_score(widx: int) -> float:
        before = state.port_free
        before_work = state.total_work
        first, token = _score(state, widx, variant.scope)
        if not variant.lookahead:
            state.rollback(token)
            return first
        best_pair = -float("inf")
        for j in usable:
            token2, comm_end2, _ = state.speculate(j)
            if variant.scope == "global":
                pair = state.total_work / comm_end2 if comm_end2 > 0 else float("inf")
            else:
                gained = state.total_work - before_work
                elapsed = comm_end2 - before
                pair = gained / elapsed if elapsed > 0 else float("inf")
            state.rollback(token2)
            best_pair = max(best_pair, pair)
        state.rollback(token)
        return best_pair

    sequence: list[int] = []
    panels = PanelAllocator(grid.s)
    since_grant = [0] * platform.p
    need = [ceil_div(grid.r, mu) if mu >= 1 else 0 for mu in mus]
    while not panels.exhausted:
        best_w = max(usable, key=lambda i: (candidate_score(i), -i))
        sequence.append(best_w)
        state.assign(best_w)
        since_grant[best_w] += 1
        if since_grant[best_w] == need[best_w]:
            since_grant[best_w] = 0
            panels.grant(mus[best_w])
    return SelectionOutcome(sequence=sequence, mus=mus, variant=variant)


def min_min_selection(platform: Platform, grid: BlockGrid) -> SelectionOutcome:
    """OMMOML's selection: repeatedly give the next chunk to the worker that
    would finish it first (port availability and compute backlog included;
    the C-chunk send is counted, ties go to the first worker in index
    order)."""
    mus = usable_mus(platform)
    usable = [i for i, mu in enumerate(mus) if mu >= 1]
    if not usable:
        raise SchedulingError("no worker has enough memory for the overlapped layout")
    state = SelectionState(platform, grid, mus, count_c=True)
    sequence: list[int] = []
    panels = PanelAllocator(grid.s)
    since_grant = [0] * platform.p
    need = [ceil_div(grid.r, mu) if mu >= 1 else 0 for mu in mus]
    while not panels.exhausted:
        best_w, best_done = -1, float("inf")
        for i in usable:
            token, _, comp_end = state.speculate(i)
            state.rollback(token)
            if comp_end < best_done:
                best_w, best_done = i, comp_end
        sequence.append(best_w)
        state.assign(best_w)
        since_grant[best_w] += 1
        if since_grant[best_w] == need[best_w]:
            since_grant[best_w] = 0
            panels.grant(mus[best_w])
    return SelectionOutcome(sequence=sequence, mus=mus, meta={"criterion": "min-min"})


def round_robin_sequence(platform: Platform, grid: BlockGrid) -> SelectionOutcome:
    """ORROML's 'selection': cycle over every usable worker until all
    columns are granted (no resource selection at all)."""
    mus = usable_mus(platform)
    usable = [i for i, mu in enumerate(mus) if mu >= 1]
    if not usable:
        raise SchedulingError("no worker has enough memory for the overlapped layout")
    sequence: list[int] = []
    panels = PanelAllocator(grid.s)
    since_grant = [0] * platform.p
    need = [ceil_div(grid.r, mu) if mu >= 1 else 0 for mu in mus]
    for widx in itertools.cycle(usable):
        if panels.exhausted:
            break
        sequence.append(widx)
        since_grant[widx] += 1
        if since_grant[widx] == need[widx]:
            since_grant[widx] = 0
            panels.grant(mus[widx])
    return SelectionOutcome(sequence=sequence, mus=mus, meta={"criterion": "round-robin"})


# ----------------------------------------------------------------------
# phase 2: sequence -> executable plan
# ----------------------------------------------------------------------
def build_plan_from_sequence(
    platform: Platform, grid: BlockGrid, outcome: SelectionOutcome
) -> Plan:
    """Convert a selection sequence into a runnable plan.

    Replays the sequence to reproduce the panel grants, walks each worker's
    granted panels with a :class:`PanelCursor` (ragged edges become
    rectangular chunks), assigns chunk ids in selection order, and installs
    the earliest-selected-first port policy.  Trailing selections that never
    earned a grant are dropped (the paper stops as soon as all blocks are
    allocated columnwise).
    """
    mus = outcome.mus
    panels = PanelAllocator(grid.s)
    cursors: list[PanelCursor | None] = [
        PanelCursor(i, mu, grid) if mu >= 1 else None for i, mu in enumerate(mus)
    ]
    since_grant = [0] * platform.p
    need = [ceil_div(grid.r, mu) if mu >= 1 else 0 for mu in mus]
    for widx in outcome.sequence:
        if panels.exhausted:
            break
        since_grant[widx] += 1
        if since_grant[widx] == need[widx]:
            since_grant[widx] = 0
            panel = panels.grant(mus[widx])
            if panel is not None:
                cursor = cursors[widx]
                assert cursor is not None
                cursor.add_panel(panel)
    if not panels.exhausted:
        raise SchedulingError("selection sequence did not cover all columns")

    assignments: list[list[Chunk]] = [[] for _ in range(platform.p)]
    cid = 0
    for widx in outcome.sequence:
        cursor = cursors[widx]
        if cursor is None:
            continue
        chunk = cursor.next_chunk(cid)
        if chunk is None:
            continue  # trailing selection past this worker's real supply
        cid += 1
        assignments[widx].append(chunk)
    enrolled = [i for i, chunks in enumerate(assignments) if chunks]
    return Plan(
        assignments=assignments,
        policy=ReadyPolicy(selection_order_priority),
        depths=[2] * platform.p,
        meta={
            "enrolled": enrolled,
            "selections": len(outcome.sequence),
            "variant": outcome.variant.label if outcome.variant else outcome.meta.get("criterion"),
        },
    )
