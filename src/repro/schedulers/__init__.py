"""The paper's scheduling algorithms (Sections 4-6) and the dynamic-platform
adaptive wrapper."""

from .adaptive import DYNAMIC_MODES, AdaptiveScheduler
from .base import Scheduler, SchedulingError
from .bmm import BMMScheduler
from .demand_driven import ODDOMLScheduler
from .geometry import (
    GEOMETRIES,
    GridGeometry,
    LayerGeometry,
    PartitionGeometry,
    make_geometry,
    transpose_chunk,
)
from .heterogeneous import HetScheduler
from .homogeneous import (
    HomIScheduler,
    HomScheduler,
    ReselectionChoice,
    homogeneous_plan,
    homogeneous_worker_count,
)
from .min_min import OMMOMLScheduler
from .registry import SCHEDULERS, canonical_name, default_suite, layer_suite, make_scheduler
from .round_robin import ORROMLScheduler
from .selection import (
    ALL_VARIANTS,
    SelectionOutcome,
    Variant,
    build_plan_from_sequence,
    incremental_selection,
    min_min_selection,
    round_robin_sequence,
    usable_mus,
)
from .single_worker import MaxReuseSingleWorker

__all__ = [
    "DYNAMIC_MODES",
    "AdaptiveScheduler",
    "Scheduler",
    "SchedulingError",
    "BMMScheduler",
    "ODDOMLScheduler",
    "HetScheduler",
    "HomIScheduler",
    "HomScheduler",
    "ReselectionChoice",
    "homogeneous_plan",
    "homogeneous_worker_count",
    "OMMOMLScheduler",
    "GEOMETRIES",
    "GridGeometry",
    "LayerGeometry",
    "PartitionGeometry",
    "make_geometry",
    "transpose_chunk",
    "SCHEDULERS",
    "canonical_name",
    "default_suite",
    "layer_suite",
    "make_scheduler",
    "ORROMLScheduler",
    "ALL_VARIANTS",
    "SelectionOutcome",
    "Variant",
    "build_plan_from_sequence",
    "incremental_selection",
    "min_min_selection",
    "round_robin_sequence",
    "usable_mus",
    "MaxReuseSingleWorker",
]
