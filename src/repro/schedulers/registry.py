"""Name-based scheduler registry.

The experiment harness, the CLI and the benchmarks look algorithms up by
their paper names.  ``default_suite()`` returns the seven algorithms of
Section 6 in the paper's presentation order.
"""

from __future__ import annotations

from typing import Callable

from .base import Scheduler
from .bmm import BMMScheduler
from .coded import CodedScheduler, RatelessCodedScheduler
from .demand_driven import ODDOMLScheduler
from .heterogeneous import HetScheduler
from .homogeneous import HomIScheduler, HomScheduler
from .min_min import OMMOMLScheduler
from .round_robin import ORROMLScheduler
from .single_worker import MaxReuseSingleWorker

__all__ = ["SCHEDULERS", "make_scheduler", "default_suite"]

#: Factory per algorithm name.
SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "Hom": HomScheduler,
    "HomI": HomIScheduler,
    "Het": HetScheduler,
    "ORROML": ORROMLScheduler,
    "OMMOML": OMMOMLScheduler,
    "ODDOML": ODDOMLScheduler,
    "BMM": BMMScheduler,
    "MaxReuse1": MaxReuseSingleWorker,
    # coded-redundancy family (not part of the paper's suite; raced against
    # the replanning modes by dynamic_sweep and the coded benchmarks)
    "Coded": CodedScheduler,
    "CodedRL": RatelessCodedScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by its paper name (case-sensitive)."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}") from None
    return factory()


def default_suite() -> list[Scheduler]:
    """The seven algorithms compared throughout Section 6."""
    return [make_scheduler(n) for n in ("Hom", "HomI", "Het", "ORROML", "OMMOML", "ODDOML", "BMM")]
