"""Name-based scheduler registry.

The experiment harness, the CLI and the benchmarks look algorithms up by
their paper names.  ``default_suite()`` returns the seven algorithms of
Section 6 in the paper's presentation order.
"""

from __future__ import annotations

from typing import Callable

from .base import Scheduler
from .bmm import BMMScheduler
from .coded import CodedScheduler, RatelessCodedScheduler
from .demand_driven import ODDOMLScheduler
from .heterogeneous import HetScheduler
from .homogeneous import HomIScheduler, HomScheduler
from .min_min import OMMOMLScheduler
from .round_robin import ORROMLScheduler
from .single_worker import MaxReuseSingleWorker

__all__ = [
    "SCHEDULERS",
    "canonical_name",
    "make_scheduler",
    "default_suite",
    "layer_suite",
]

#: Factory per algorithm name.
SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "Hom": HomScheduler,
    "HomI": HomIScheduler,
    "Het": HetScheduler,
    "ORROML": ORROMLScheduler,
    "OMMOML": OMMOMLScheduler,
    "ODDOML": ODDOMLScheduler,
    "BMM": BMMScheduler,
    "MaxReuse1": MaxReuseSingleWorker,
    # coded-redundancy family (not part of the paper's suite; raced against
    # the replanning modes by dynamic_sweep and the coded benchmarks)
    "Coded": CodedScheduler,
    "CodedRL": RatelessCodedScheduler,
    # layer-based partition variants (see repro.schedulers.geometry): the
    # same search algorithms planning on the transposed grid, so C is cut
    # into horizontal layers instead of column panels
    "HomL": lambda: HomScheduler(geometry="layer"),
    "HomIL": lambda: HomIScheduler(geometry="layer"),
    "HetL": lambda: HetScheduler(geometry="layer"),
}

#: Case-insensitive spelling -> registered name.
_CANONICAL: dict[str, str] = {name.lower(): name for name in SCHEDULERS}


def canonical_name(name: str) -> str:
    """Resolve a (case-insensitive) algorithm name to its registered
    spelling; unknown names raise a ``KeyError`` listing the registry."""
    try:
        return _CANONICAL[str(name).strip().lower()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None


def make_scheduler(name: str, *, objective=None) -> Scheduler:
    """Instantiate a scheduler by its paper name (case-insensitive; the
    registered spellings are canonical).  ``objective`` optionally sets
    the scoring objective (a name, spec string, or
    :class:`~repro.experiments.objectives.Objective`) on the new
    instance."""
    sched = SCHEDULERS[canonical_name(name)]()
    if objective is not None:
        sched.with_objective(objective)
    return sched


def default_suite() -> list[Scheduler]:
    """The seven algorithms compared throughout Section 6."""
    return [make_scheduler(n) for n in ("Hom", "HomI", "Het", "ORROML", "OMMOML", "ODDOML", "BMM")]


def layer_suite() -> list[Scheduler]:
    """The layer-based variants next to their square-chunk originals --
    the suite the geometry comparisons run."""
    return [make_scheduler(n) for n in ("Hom", "HomL", "HomI", "HomIL", "Het", "HetL")]
