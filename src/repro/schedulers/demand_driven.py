"""ODDOML: Overlapped Demand-Driven with the paper's Optimized Memory Layout.

Fully dynamic: whenever the master port frees, the next message goes to the
worker that has been able to receive it the longest ("the first worker
which can receive it" -- the spare A/B buffers of the overlapped layout are
what makes a worker receivable ahead of its compute).  Workers that drain
their pipeline are handed the next free column panel on demand; there is no
resource selection, every worker with enough memory participates.
"""

from __future__ import annotations

from ..core.blocks import BlockGrid
from ..platform.model import Platform
from ..sim.allocator import PanelDemandAllocator
from ..sim.plan import Plan
from ..sim.policies import ReadyPolicy, demand_priority
from .base import Scheduler, SchedulingError
from .selection import usable_mus

__all__ = ["ODDOMLScheduler"]


class ODDOMLScheduler(Scheduler):
    """Demand-driven dynamic scheduling over the overlapped layout."""

    name = "ODDOML"

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        mus = usable_mus(platform)
        if not any(mu >= 1 for mu in mus):
            raise SchedulingError("no worker has enough memory for the overlapped layout")
        allocator = PanelDemandAllocator(grid, mus)
        return Plan(
            assignments=[[] for _ in range(platform.p)],
            policy=ReadyPolicy(demand_priority),
            depths=[2] * platform.p,
            allocator=allocator,
            meta={"algorithm": self.name, "mus": mus},
        )
