"""ORROML: Overlapped Round-Robin with the paper's Optimized Memory Layout.

Chunks (each worker's own ``mu_i x mu_i``) are dealt to *all* workers in a
round-robin cycle -- no resource selection whatsoever.  Execution uses the
same overlapped layout and earliest-selected-first port policy as Het, so
the only difference from Het is the selection order.
"""

from __future__ import annotations

from ..core.blocks import BlockGrid
from ..platform.model import Platform
from ..sim.plan import Plan
from .base import Scheduler
from .selection import build_plan_from_sequence, round_robin_sequence

__all__ = ["ORROMLScheduler"]


class ORROMLScheduler(Scheduler):
    """Round-robin chunk distribution over every usable worker."""

    name = "ORROML"

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        outcome = round_robin_sequence(platform, grid)
        plan = build_plan_from_sequence(platform, grid, outcome)
        plan.meta["algorithm"] = self.name
        return plan
