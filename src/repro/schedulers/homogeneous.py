"""The paper's homogeneous algorithm (Section 4) and its Hom/HomI wrappers.

Core algorithm (paper Algorithms 1 and 2): with ``mu`` the largest integer
such that ``mu^2 + 4 mu <= m``, enroll ``P = min(p, ceil(mu w / (2c)))``
workers -- the smallest number that saturates the master's port while
keeping every enrolled worker busy.  C is split into ``mu``-wide column
panels dealt round-robin to the ``P`` workers; each panel is walked top to
bottom in ``mu x mu`` chunks.  The master's program is a fixed message
order: for every batch of ``P`` chunks, send the C chunks, then interleave
the ``t`` rounds across the ``P`` workers (so each worker's round ``k+1``
arrives while it computes round ``k``), then collect the C chunks.

On a heterogeneous platform the wrappers first *extract* a virtual
homogeneous platform:

* **Hom** tries every memory size present; enrolled workers are those with
  at least that much memory, and their apparent speed/bandwidth is the
  worst among them.
* **HomI** ("improved") tries every (memory, bandwidth, speed) threshold
  triple present; enrolled workers must be at least as good on *all three*
  dimensions, and apparent parameters are the thresholds themselves.

Each virtual platform is evaluated by simulating the homogeneous algorithm
on it; the best one wins and the schedule is then executed on the *real*
(heterogeneous) workers.

The threshold search is the planning bottleneck at paper scale, so it is
bulk-evaluated: candidate triples are first *deduplicated* by their
simulation signature ``(n, mu, c, w)`` -- the virtual makespan depends on
nothing else -- keeping the first occurrence (which is also the one
``min()`` would select among equals), and the surviving candidates are
scored in one :func:`~repro.sim.batch.batch_simulate` call instead of a
Python loop of individual simulations.

On *dynamic* platforms the one-shot choice can be wrong one event later;
:meth:`HomScheduler.reselection_candidates` re-enumerates the threshold
candidates on the current (time-varying) parameters for the adaptive
wrapper's boundary-time re-selection (``mode="reselect"``), which scores
them in context through the shared-prefix incremental batch search -- see
:mod:`repro.schedulers.adaptive`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.blocks import BlockGrid, ceil_div
from ..core.chunks import Chunk, make_chunk
from ..core.layout import overlapped_mu
from ..platform.model import Platform
from ..sim.batch import batch_simulate
from ..sim.plan import Plan
from ..sim.policies import StrictOrderPolicy
from .base import Scheduler, SchedulingError
from .geometry import PartitionGeometry, make_geometry

__all__ = [
    "homogeneous_worker_count",
    "homogeneous_plan",
    "HomScheduler",
    "HomIScheduler",
    "ReselectionChoice",
]


def homogeneous_worker_count(p: int, mu: int, c: float, w: float) -> int:
    """The paper's resource selection ``P = min(p, ceil(mu w / (2c)))``:
    the smallest worker count whose aggregate round time
    ``P * 2 mu t c`` covers one worker's chunk compute time ``mu^2 t w``."""
    if p < 1 or mu < 1:
        raise ValueError("need p >= 1 and mu >= 1")
    return max(1, min(p, math.ceil(mu * w / (2 * c))))


def homogeneous_plan(
    grid: BlockGrid,
    *,
    n_workers: int,
    mu: int,
    enrolled: list[int],
    total_workers: int,
) -> Plan:
    """Build the strict-order plan of Algorithm 1.

    ``enrolled`` lists the *real* worker indices that participate, already
    restricted to the selected ``P = n_workers`` (``len(enrolled)``); chunks
    are dealt to them round-robin by column panel.
    """
    if len(enrolled) != n_workers:
        raise ValueError("enrolled list must have exactly n_workers entries")
    if mu < 1:
        raise SchedulingError("mu < 1: not enough memory for the overlapped layout")
    panels = [(j0, min(mu, grid.s - j0)) for j0 in range(0, grid.s, mu)]
    row_chunks = [(i0, min(mu, grid.r - i0)) for i0 in range(0, grid.r, mu)]
    assignments: list[list[Chunk]] = [[] for _ in range(total_workers)]
    order: list[int] = []
    cid = 0
    # batches: one cycle of P panels, walked row-band by row-band
    for cycle_start in range(0, len(panels), n_workers):
        batch_panels = panels[cycle_start : cycle_start + n_workers]
        for i0, h in row_chunks:
            batch: list[tuple[int, Chunk]] = []
            for slot, (j0, width) in enumerate(batch_panels):
                widx = enrolled[slot]
                ch = make_chunk(cid, widx, i0, h, j0, width, grid.t)
                cid += 1
                assignments[widx].append(ch)
                batch.append((widx, ch))
            # Algorithm 1 message order: C sends, interleaved rounds, C receives
            for widx, _ in batch:
                order.append(widx)  # C_SEND
            for _k in range(grid.t):
                for widx, _ in batch:
                    order.append(widx)  # ROUND k
            for widx, _ in batch:
                order.append(widx)  # C_RETURN
    return Plan(
        assignments=assignments,
        policy=StrictOrderPolicy(order),
        depths=[2] * total_workers,
        meta={"mu": mu, "P": n_workers, "enrolled": list(enrolled)},
    )


@dataclass(frozen=True)
class _VirtualChoice:
    """One candidate virtual homogeneous platform."""

    enrolled: tuple[int, ...]
    c: float
    w: float
    m: int
    estimate: float
    mu: int
    n_workers: int


def _evaluate_candidates(
    platform: Platform,
    grid: BlockGrid,
    thresholds: list[tuple[list[int], float, float, int]],
) -> list[_VirtualChoice]:
    """Bulk-evaluate threshold candidates ``(enrolled, c, w, m)``.

    Candidates are deduplicated by their simulation signature
    ``(n, mu, c, w)`` -- the virtual platform's makespan depends on nothing
    else -- keeping the *first* occurrence, which is exactly the candidate
    ``min()`` would retain among equal estimates, so the selected schedule
    is unchanged.  The survivors are scored in one batch.
    """
    specs: list[tuple[list[int], float, float, int, int, int]] = []
    seen: set[tuple[int, int, float, float]] = set()
    for enrolled, c_app, w_app, m_thr in thresholds:
        try:
            mu = overlapped_mu(m_thr)
        except ValueError:
            continue
        n = homogeneous_worker_count(len(enrolled), mu, c_app, w_app)
        key = (n, mu, c_app, w_app)
        if key in seen:
            continue
        seen.add(key)
        specs.append((enrolled, c_app, w_app, m_thr, n, mu))
    runs = []
    plan_cache: dict[tuple[int, int], Plan] = {}
    for _enrolled, c_app, w_app, m_thr, n, mu in specs:
        virtual = Platform.homogeneous(n, c_app, w_app, m_thr, name="virtual")
        # the scoring plan depends only on (n, mu): share one read-only
        # plan object across candidates that differ only in (c, w, m)
        plan = plan_cache.get((n, mu))
        if plan is None:
            plan = homogeneous_plan(
                grid, n_workers=n, mu=mu, enrolled=list(range(n)), total_workers=n
            )
            plan.collect_events = False
            plan_cache[(n, mu)] = plan
        runs.append((virtual, plan))
    estimates = batch_simulate(runs)
    out = []
    for (enrolled, c_app, w_app, m_thr, n, mu), est in zip(specs, estimates):
        # rank candidate real workers: fastest compute, then fastest link
        ranked = sorted(enrolled, key=lambda i: (platform[i].w, platform[i].c, i))
        out.append(
            _VirtualChoice(
                enrolled=tuple(ranked[:n]),
                c=c_app,
                w=w_app,
                m=m_thr,
                estimate=float(est),
                mu=mu,
                n_workers=n,
            )
        )
    return out


@dataclass(frozen=True)
class ReselectionChoice:
    """One candidate virtual platform of a *boundary-time* re-selection.

    Unlike :class:`_VirtualChoice` it carries no makespan estimate: the
    scenario-aware score of a re-selection candidate is the makespan of the
    whole *continued* run (executed prefix + replanned suffix), which only
    the caller — the incremental shared-prefix batch search in
    :mod:`repro.schedulers.adaptive` — can compute.
    """

    #: Chosen workers (indices into the platform the search ran on), ranked
    #: fastest-first by current ``(w, c)``.
    workers: tuple[int, ...]
    mu: int
    n_workers: int
    c: float
    w: float
    m: int


def homogeneous_port_blocks(grid: BlockGrid, mu: int) -> int:
    """Total port traffic (blocks) of the homogeneous tiling of ``grid``
    with chunk side ``mu``: every C block crosses twice, and each of the
    ``ceil(s/mu) x ceil(r/mu)`` chunks streams ``(h + w)`` A/B blocks per
    round over ``t`` rounds.  Independent of the worker count -- the
    tiling, not the deal, determines the traffic."""
    panels = ceil_div(grid.s, mu)
    rows = ceil_div(grid.r, mu)
    return 2 * grid.r * grid.s + grid.t * (panels * grid.r + rows * grid.s)


class HomScheduler(Scheduler):
    """Hom: homogeneous algorithm with memory-threshold platform extraction.

    ``geometry`` selects the partition family (see
    :mod:`repro.schedulers.geometry`); the layer variant plans on the
    transposed grid and is registered as ``HomL``.  ``objective`` selects
    the scoring rule of the threshold search (see
    :mod:`repro.experiments.objectives`); the default compares candidates
    on their virtual makespan exactly as before.
    """

    name = "Hom"

    def __init__(
        self,
        *,
        geometry: "PartitionGeometry | str | None" = None,
        objective=None,
    ) -> None:
        self.geometry = make_geometry(geometry)
        if self.geometry.suffix:
            self.name = f"{type(self).name}{self.geometry.suffix}"
        if objective is not None:
            self.with_objective(objective)

    @property
    def signature(self) -> str:
        sig = self.name
        if self.geometry.name != "grid":
            sig = f"{type(self).name}|{self.geometry.signature}"
        if self.objective is not None and not self.objective.is_makespan:
            sig = f"{sig}|{self.objective.signature}"
        return sig

    def reselection_candidates(self, platform: Platform) -> list[ReselectionChoice]:
        """Threshold candidates for re-selecting the virtual platform
        *mid-run*, on the current (time-varying) parameters.

        The static search dedupes by the virtual simulation signature
        ``(n, mu, c, w)`` because a from-scratch virtual makespan depends on
        nothing else.  In context that is wrong: two threshold triples with
        equal signatures can enroll *different real workers*, whose current
        speeds differ — so boundary candidates dedupe by what actually
        distinguishes their continuations, ``(n, mu, chosen workers)``.
        Scoring (and the choice) happens in the caller's shared-prefix
        incremental batch search, not here.
        """
        out: list[ReselectionChoice] = []
        seen: set[tuple[int, int, tuple[int, ...]]] = set()
        for enrolled, c_app, w_app, m_thr in self._thresholds(platform):
            try:
                mu = overlapped_mu(m_thr)
            except ValueError:
                continue
            n = homogeneous_worker_count(len(enrolled), mu, c_app, w_app)
            ranked = sorted(enrolled, key=lambda i: (platform[i].w, platform[i].c, i))
            chosen = tuple(ranked[:n])
            key = (n, mu, chosen)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                ReselectionChoice(
                    workers=chosen, mu=mu, n_workers=n, c=c_app, w=w_app, m=m_thr
                )
            )
        return out

    def _thresholds(self, platform: Platform) -> list[tuple[list[int], float, float, int]]:
        out = []
        for m_thr in sorted(set(platform.ms)):
            enrolled = [i for i in range(platform.p) if platform[i].m >= m_thr]
            c_app = max(platform[i].c for i in enrolled)
            w_app = max(platform[i].w for i in enrolled)
            out.append((enrolled, c_app, w_app, m_thr))
        return out

    def _candidates(self, platform: Platform, grid: BlockGrid) -> list[_VirtualChoice]:
        return _evaluate_candidates(platform, grid, self._thresholds(platform))

    def _pick(self, candidates: list[_VirtualChoice], pgrid: BlockGrid) -> _VirtualChoice:
        """Select the best threshold candidate under the active objective.

        The default makespan objective takes the original comparison
        verbatim (bit-identical); cost-aware objectives price each
        candidate's enrollment and tiling traffic analytically."""
        objective = self.objective
        if objective is None or objective.is_makespan:
            return min(candidates, key=lambda ch: ch.estimate)
        from ..experiments.objectives import PlanScore

        def _score(ch: _VirtualChoice) -> float:
            return objective.score(
                PlanScore(
                    makespan=ch.estimate,
                    workers=ch.n_workers,
                    port_blocks=homogeneous_port_blocks(pgrid, ch.mu),
                    block_bytes=pgrid.block_bytes,
                )
            )

        best = min(candidates, key=_score)
        if _score(best) == float("inf"):
            raise SchedulingError(
                f"{self.name}: no threshold candidate is admissible under "
                f"objective {objective.signature}"
            )
        return best

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        pgrid = self.geometry.plan_grid(grid)
        candidates = self._candidates(platform, pgrid)
        if not candidates:
            raise SchedulingError(f"{self.name}: no feasible virtual platform")
        best = self._pick(candidates, pgrid)
        plan = homogeneous_plan(
            pgrid,
            n_workers=best.n_workers,
            mu=best.mu,
            enrolled=list(best.enrolled),
            total_workers=platform.p,
        )
        plan.meta.update(
            {
                "algorithm": self.name,
                "virtual_estimate": best.estimate,
                "apparent": {"c": best.c, "w": best.w, "m": best.m},
            }
        )
        return self.geometry.finalize(plan, grid)


class HomIScheduler(HomScheduler):
    """HomI: homogeneous algorithm with (memory, bandwidth, speed) threshold
    triples -- a finer-grained virtual platform search."""

    name = "HomI"

    def _thresholds(self, platform: Platform) -> list[tuple[list[int], float, float, int]]:
        out = []
        for m_thr in sorted(set(platform.ms)):
            for c_thr in sorted(set(platform.cs)):
                for w_thr in sorted(set(platform.ws)):
                    enrolled = [
                        i
                        for i in range(platform.p)
                        if platform[i].m >= m_thr
                        and platform[i].c <= c_thr
                        and platform[i].w <= w_thr
                    ]
                    if enrolled:
                        out.append((enrolled, c_thr, w_thr, m_thr))
        return out
