"""Coded-redundancy schedulers: tolerate stragglers with spare work, not replanning.

The adaptive family (:mod:`repro.schedulers.adaptive`) reacts to platform
events by *replanning* — migrating chunks, re-running the selection.  The
coded family applies the orthogonal strategy of rateless coded matrix
multiplication (see PAPERS.md): tile C into *stripes* and over-provision
each stripe with interchangeable *coded shares*, so that the product is
complete as soon as any ``k`` distinct shares of every stripe return —
whichever workers happen to be fast.  Late or crashed shares are simply
abandoned; nothing is ever migrated or replanned.

Stripe model
------------
C is tiled into ``side x side`` rectangles (ragged at the right/bottom
edges), where ``side`` is the smallest overlapped chunk side ``mu_i``
among the enrolled workers, so any share fits any enrolled worker's
memory.  A *share* of a stripe is an ordinary :class:`~repro.core.chunks.Chunk`
over the stripe's rectangle carrying ``seg = ceil(t / k)`` max-re-use
rounds: it models one coded linear combination of the ``t`` inner block
steps, sized so that any ``k`` decoded shares reconstruct the stripe (an
MDS-style code over the inner dimension, as in polynomial / rateless coded
matmul).  Shares cost real port time and real compute whether or not they
end up being used — the difference between issued and useful work is the
family's *wasted work* metric.

Two variants:

``Coded`` (:class:`CodedScheduler`)
    fixed-rate MDS-like: exactly ``n = k + redundancy`` shares per stripe,
    statically staggered across the enrolled workers so one stripe's
    shares land on distinct workers whenever ``n <= p``.  The plan is a
    plain assignment plan — all three engines (reference / fast / batch)
    replay it unchanged.

``CodedRL`` (:class:`RatelessCodedScheduler`)
    rateless: a :class:`CodedDemandAllocator` streams shares to drained
    workers, always targeting the undecoded stripe with the fewest issued
    shares.  Wired to a live :class:`DecodeTracker` (the decode-aware
    dynamic run) it keeps streaming until every stripe decodes; replayed
    statically (no tracker) it caps issuance at ``k + redundancy`` per
    stripe so plain engine replays terminate.

The decode-completion criterion itself lives in
:func:`repro.sim.dynamic.simulate_dynamic` (``completion=`` hook): the run
stops at the decisive ``k``-th return of the last undecoded stripe,
abandoning every in-flight share (recorded as killed) and every unstarted
one.  :func:`repro.sim.validate.validate_dynamic` audits such runs with a
decode criterion (>= ``k`` distinct returns per stripe) instead of the
exact grid tiling that replanned runs must satisfy.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.blocks import BlockGrid
from ..core.chunks import Chunk, make_chunk
from ..platform.model import Platform
from ..sim.dynamic import PlatformTimeline, simulate_dynamic
from ..sim.engine import Engine, SimResult
from ..sim.plan import Plan
from ..sim.policies import ReadyPolicy, demand_priority
from .base import Scheduler, SchedulingError
from .selection import usable_mus

__all__ = [
    "CODED_FAMILY_VERSION",
    "CodedDemandAllocator",
    "CodedScheduler",
    "DecodeTracker",
    "RatelessCodedScheduler",
    "build_stripes",
    "decode_threshold",
]

#: Version tag of the decode-completion semantics; folded into dynamic
#: result-cache keys so cached coded makespans are invalidated when the
#: criterion changes (mirrors ``ADAPTIVE_CONTROLLER_VERSION``).
CODED_FAMILY_VERSION = "coded-v1"


def decode_threshold(t: int, k: int | None) -> int:
    """Resolve the decode threshold: explicit ``k`` clamped to ``[1, t]``,
    default ``min(4, t)``."""
    if k is None:
        return max(1, min(4, t))
    if k < 1:
        raise ValueError("decode threshold k must be >= 1")
    return min(k, t)


def build_stripes(grid: BlockGrid, side: int) -> list[tuple[int, int, int, int]]:
    """Tile the C grid into ``side x side`` stripes (ragged at the edges).

    Returns ``(i0, h, j0, w)`` rectangles in column-major stripe order —
    the same walk direction as the panel cursors, so share demand sweeps C
    left to right.
    """
    if side < 1:
        raise ValueError("stripe side must be >= 1")
    stripes = []
    for j0 in range(0, grid.s, side):
        w = min(side, grid.s - j0)
        for i0 in range(0, grid.r, side):
            h = min(side, grid.r - i0)
            stripes.append((i0, h, j0, w))
    return stripes


class DecodeTracker:
    """Decode state of one coded run: returns per stripe, satisfied when
    every stripe has ``k`` of them.

    Implements the ``completion`` protocol of
    :func:`repro.sim.dynamic.simulate_dynamic` (``on_return`` /
    ``satisfied``) and doubles as the rateless allocator's issuance
    feedback (decoded stripes stop attracting shares).
    """

    def __init__(self, stripes: Sequence[Sequence[int]], k: int) -> None:
        if k < 1:
            raise ValueError("decode threshold k must be >= 1")
        self.k = k
        self.stripes = [tuple(rect) for rect in stripes]
        n = len(self.stripes)
        self.returns = [0] * n
        self.decoded = [False] * n
        self.decode_time: float | None = None
        self._undecoded = n
        self._share_stripe: dict[int, int] = {}

    # -- registration ---------------------------------------------------
    def register(self, cid: int, sid: int) -> None:
        """Declare share ``cid`` as belonging to stripe ``sid``."""
        if not 0 <= sid < len(self.stripes):
            raise ValueError(f"stripe {sid} out of range")
        self._share_stripe[cid] = sid

    def stripe_of(self, cid: int) -> int | None:
        return self._share_stripe.get(cid)

    # -- completion protocol --------------------------------------------
    @property
    def satisfied(self) -> bool:
        return self._undecoded == 0

    def on_return(self, cid: int, end: float) -> None:
        """Record the ``C_RETURN`` of share ``cid`` ending at ``end``."""
        sid = self._share_stripe.get(cid)
        if sid is None:
            raise KeyError(f"C return of unregistered share {cid}")
        self.returns[sid] += 1
        if not self.decoded[sid] and self.returns[sid] >= self.k:
            self.decoded[sid] = True
            self._undecoded -= 1
            if self._undecoded == 0:
                self.decode_time = end

    # -- reporting ------------------------------------------------------
    @property
    def total_returns(self) -> int:
        return sum(self.returns)


class CodedDemandAllocator:
    """Stream coded shares to drained workers (the rateless variant).

    Duck-types :class:`~repro.sim.allocator.PanelDemandAllocator`'s
    engine-facing surface (``refill`` / ``refill_via`` / ``clone`` /
    ``next_cid`` / ``rebase_cids`` / ``sides`` / ``toledo``), so both
    engines and the dynamic driver drive it unchanged.  Issuance targets
    the undecoded stripe with the fewest issued shares (ties to the lowest
    stripe index).  Without an attached :class:`DecodeTracker` issuance is
    capped at ``k + redundancy`` shares per stripe, making plain static
    replays terminate as a fixed-rate code; with a tracker, decoded
    stripes stop attracting shares and streaming continues until every
    stripe decodes.
    """

    #: duck-typed fast-path capability flag consumed by
    #: :func:`repro.sim.fastpath.supports_fast_path`
    fast_path_ok = True

    def __init__(
        self,
        stripes: Sequence[tuple[int, int, int, int]],
        seg: int,
        enrolled: Sequence[int],
        p: int,
        cap: int,
    ) -> None:
        if cap < 1:
            raise ValueError("per-stripe issuance cap must be >= 1")
        self.stripes = [tuple(rect) for rect in stripes]
        self.seg = seg
        self.enrolled = list(enrolled)
        self.p = p
        self.cap = cap
        self.issued = [0] * len(self.stripes)
        self.tracker: DecodeTracker | None = None
        self._next_cid = 0
        self._enrolled_set = set(self.enrolled)

    def attach(self, tracker: DecodeTracker) -> None:
        """Wire the live decode state in (rateless streaming mode)."""
        self.tracker = tracker

    # -- issuance -------------------------------------------------------
    def _pick_stripe(self) -> int | None:
        tracker = self.tracker
        best = -1
        best_issued = 0
        for sid, count in enumerate(self.issued):
            if tracker is not None:
                if tracker.decoded[sid]:
                    continue
            elif count >= self.cap:
                continue
            if best < 0 or count < best_issued:
                best, best_issued = sid, count
        return None if best < 0 else best

    def refill(self, engine: Engine) -> None:
        self.refill_via(engine.has_pending, engine.assign_chunk)

    def refill_via(self, has_pending, assign_chunk) -> None:
        """Engine-agnostic refill: one share per drained enrolled worker
        per engine iteration, in ascending worker order — the same demand
        discipline as the panel allocator, so both engines hand shares out
        in an identical order."""
        for widx in self.enrolled:
            if has_pending(widx):
                continue
            sid = self._pick_stripe()
            if sid is None:
                return
            i0, h, j0, w = self.stripes[sid]
            chunk = make_chunk(self._next_cid, widx, i0, h, j0, w, self.seg)
            self._next_cid += 1
            self.issued[sid] += 1
            if self.tracker is not None:
                self.tracker.register(chunk.cid, sid)
            assign_chunk(widx, chunk)

    # -- PanelDemandAllocator surface -----------------------------------
    @property
    def exhausted(self) -> bool:
        """True when no further share can be issued right now."""
        return self._pick_stripe() is None

    @property
    def sides(self) -> list[int]:
        side = max((max(rect[1], rect[3]) for rect in self.stripes), default=0)
        return [side if i in self._enrolled_set else 0 for i in range(self.p)]

    @property
    def toledo(self) -> bool:
        return False

    @property
    def next_cid(self) -> int:
        return self._next_cid

    def rebase_cids(self, next_cid: int) -> None:
        if next_cid < self._next_cid:
            raise ValueError("cannot rebase chunk ids backwards")
        self._next_cid = next_cid

    def clone(self) -> "CodedDemandAllocator":
        other = CodedDemandAllocator.__new__(CodedDemandAllocator)
        other.stripes = self.stripes
        other.seg = self.seg
        other.enrolled = self.enrolled
        other.p = self.p
        other.cap = self.cap
        other.issued = list(self.issued)
        other.tracker = self.tracker
        other._next_cid = self._next_cid
        other._enrolled_set = self._enrolled_set
        return other


class _CodedBase(Scheduler):
    """Shared stripe geometry, plan metadata and the decode-aware runner."""

    def __init__(self, redundancy: int = 1, k: int | None = None) -> None:
        if redundancy < 0:
            raise ValueError("redundancy must be >= 0")
        self.redundancy = redundancy
        self.k = k

    @property
    def signature(self) -> str:
        return self._objective_sig(f"{self.name}(r={self.redundancy},k={self.k})")

    # -- geometry -------------------------------------------------------
    def _geometry(self, platform: Platform, grid: BlockGrid):
        mus = usable_mus(platform)
        enrolled = [i for i, mu in enumerate(mus) if mu >= 1]
        if not enrolled:
            raise SchedulingError("no worker has enough memory for the overlapped layout")
        side = min(mus[i] for i in enrolled)
        k = decode_threshold(grid.t, self.k)
        seg = math.ceil(grid.t / k)
        stripes = build_stripes(grid, side)
        return enrolled, side, k, seg, stripes

    def _meta(self, k, redundancy, side, seg, stripes) -> dict:
        return {
            "algorithm": self.name,
            "coded": {
                "k": k,
                "redundancy": redundancy,
                "side": side,
                "seg": seg,
                "stripes": [list(rect) for rect in stripes],
            },
        }

    # -- decode-aware dynamic entry point -------------------------------
    def run_dynamic(
        self,
        platform: Platform,
        grid: BlockGrid,
        timeline: PlatformTimeline | None = None,
        collect_events: bool = False,
        *,
        record_events: bool = False,
        engine: str = "fast",
    ) -> SimResult:
        """Race the coded shares on ``platform`` under ``timeline`` and
        stop at the decode threshold.

        Mirrors :meth:`repro.schedulers.adaptive.AdaptiveScheduler.run_dynamic`:
        the result's ``meta["dynamic"]`` carries ``mode="coded"`` plus a
        ``coded`` annex with the decode time and the wasted-work split
        (issued minus useful updates / port blocks).  The makespan is the
        decode time — the instant the master can reconstruct C — not the
        drain time of abandoned shares' sunk computes.
        """
        plan = self.plan(platform, grid)
        plan.collect_events = collect_events
        ann = plan.meta["coded"]
        tracker = DecodeTracker(ann["stripes"], ann["k"])
        rect_sid = {tuple(rect): sid for sid, rect in enumerate(tracker.stripes)}
        for chunks in plan.assignments:
            for ch in chunks:
                tracker.register(ch.cid, rect_sid[(ch.i0, ch.h, ch.j0, ch.w)])
        if isinstance(plan.allocator, CodedDemandAllocator):
            plan.allocator.attach(tracker)
        result = simulate_dynamic(
            platform,
            plan,
            timeline,
            grid,
            engine=engine,
            completion=tracker,
            record_events=record_events,
        )
        if tracker.decode_time is not None:
            result.makespan = tracker.decode_time
        dyn = result.meta["dynamic"]
        dyn["mode"] = "coded"
        useful_updates = 0
        useful_blocks = 0
        k, seg = ann["k"], ann["seg"]
        for i0, h, j0, w in ann["stripes"]:
            useful_updates += k * seg * h * w
            useful_blocks += k * (2 * h * w + seg * (h + w))
        dyn["coded"] = {
            "k": k,
            "redundancy": ann["redundancy"],
            "stripes": len(ann["stripes"]),
            "decode_time": tracker.decode_time,
            "shares_returned": tracker.total_returns,
            "useful_updates": useful_updates,
            "wasted_updates": result.total_updates - useful_updates,
            "useful_blocks": useful_blocks,
            "wasted_blocks": result.blocks_through_port - useful_blocks,
        }
        result.meta.setdefault("algorithm", self.name)
        return result


class CodedScheduler(_CodedBase):
    """Fixed-rate MDS-like coding: ``k + redundancy`` shares per stripe,
    statically staggered across the enrolled workers."""

    name = "Coded"

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        enrolled, side, k, seg, stripes = self._geometry(platform, grid)
        n = k + self.redundancy
        assignments: list[list[Chunk]] = [[] for _ in range(platform.p)]
        cid = 0
        for sid, (i0, h, j0, w) in enumerate(stripes):
            for j in range(n):
                widx = enrolled[(sid + j) % len(enrolled)]
                assignments[widx].append(make_chunk(cid, widx, i0, h, j0, w, seg))
                cid += 1
        return Plan(
            assignments=assignments,
            policy=ReadyPolicy(demand_priority),
            depths=[2] * platform.p,
            meta=self._meta(k, self.redundancy, side, seg, stripes),
        )


class RatelessCodedScheduler(_CodedBase):
    """Rateless coding: shares stream to free ports on demand until the
    decode threshold is met (capped at ``k + redundancy`` per stripe when
    replayed without a live decode tracker)."""

    name = "CodedRL"

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        enrolled, side, k, seg, stripes = self._geometry(platform, grid)
        allocator = CodedDemandAllocator(
            stripes, seg, enrolled, platform.p, cap=k + self.redundancy
        )
        return Plan(
            assignments=[[] for _ in range(platform.p)],
            policy=ReadyPolicy(demand_priority),
            depths=[2] * platform.p,
            allocator=allocator,
            meta=self._meta(k, self.redundancy, side, seg, stripes),
        )
