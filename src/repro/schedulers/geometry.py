"""Partition geometries: how a scheduler tiles C into worker chunks.

The paper's algorithms all walk C the same way: ``mu``-wide *column
panels*, each panel processed top to bottom in ``mu x mu`` chunks (the
square-chunk grid of Section 4).  *Layer Based Partition for Matrix
Multiplication on Heterogeneous Processor Platforms* (Liu, Shi, Zhang &
Robertazzi) partitions C the transposed way: horizontal *layers* of block
rows, each layer walked left to right.  On the one-port star both
geometries stream the same per-chunk traffic (a round of an ``h x w``
chunk carries ``h`` A blocks and ``w`` B blocks either way), but they cut
the ragged edges of a non-square grid differently and deal panels/layers
round-robin along different axes, so their makespans diverge whenever
``r != s`` or the edge remainders differ.

:class:`PartitionGeometry` makes the tiling a first-class scheduler
parameter instead of a constant:

* :meth:`~PartitionGeometry.plan_grid` maps the real grid to the grid the
  core planning algorithm should tile.  The square-chunk
  :class:`GridGeometry` is the identity; :class:`LayerGeometry` transposes
  (``r <-> s``), because a layer of C is exactly a column panel of the
  transposed product ``C^T = B^T A^T``.
* :meth:`~PartitionGeometry.finalize` maps the planned chunks back onto
  the real grid (for layers: transpose every chunk and swap its per-round
  A/B payloads) and stamps the plan's ``meta["geometry"]``.
* :meth:`~PartitionGeometry.audit` is the tiling invariant
  :func:`~repro.sim.validate.validate_dynamic` enforces on recorded runs
  (dispatched by the result's ``meta["geometry"]`` via
  :func:`audit_tiling`).
* :meth:`~PartitionGeometry.chunk_traffic` /
  :meth:`~PartitionGeometry.chunk_updates` /
  :meth:`~PartitionGeometry.plan_port_blocks` derive the per-chunk
  traffic and compute cost the objectives price (see
  :mod:`repro.experiments.objectives`).

Because a layer plan is a transposed grid plan, every simulation engine,
the adaptive wrapper and the validator work on it unchanged -- the
message sequence of the finalized plan is block-for-block the sequence of
the plan on the transposed grid, so a layer variant's makespan equals the
grid variant's makespan on the transposed grid exactly (a property the
tests pin).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence

from ..core.blocks import BlockGrid
from ..core.chunks import Chunk, RoundSpec, assert_partition
from ..sim.plan import Plan

__all__ = [
    "GEOMETRY_VERSION",
    "PartitionGeometry",
    "GridGeometry",
    "LayerGeometry",
    "GEOMETRIES",
    "make_geometry",
    "transpose_chunk",
    "audit_tiling",
]

#: Version tag of the geometry layer, folded into every content-addressed
#: cache key (see :mod:`repro.experiments.parallel`): pre-geometry cached
#: payloads can never collide with geometry-parameterized tasks, and a
#: semantic change to any geometry bumps it once for all of them.
GEOMETRY_VERSION = "geometry-v1"


class PartitionGeometry(ABC):
    """Strategy object owning the tiling of C and its cost derivation."""

    #: Registry name (``"grid"`` / ``"layer"``); subclasses override.
    name: str = "?"

    #: Scheduler-name suffix of this geometry's registry variants ("" for
    #: the default grid, ``"L"`` for layers: ``Hom`` -> ``HomL``).
    suffix: str = ""

    @property
    def signature(self) -> str:
        """Configuration fingerprint folded into scheduler signatures."""
        return f"geom={self.name}"

    @abstractmethod
    def plan_grid(self, grid: BlockGrid) -> BlockGrid:
        """The grid the core planning algorithm should tile with column
        panels (identity for the square-chunk grid, transposed for
        layers)."""

    @abstractmethod
    def finalize(self, plan: Plan, grid: BlockGrid) -> Plan:
        """Map a plan built on :meth:`plan_grid`'s grid back onto the real
        ``grid`` and stamp ``meta["geometry"]``."""

    def audit(self, chunks: Sequence[Chunk], grid: BlockGrid) -> None:
        """Tiling invariant of recorded runs: the surviving chunks must
        tile C exactly.  Chunk *shapes* are deliberately not constrained
        -- adaptive migration legitimately re-cuts them mid-run -- so both
        geometries share the exact-cover audit."""
        assert_partition(chunks, grid)

    # -- per-chunk cost derivation (priced by the objectives) ------------

    def chunk_traffic(self, chunk: Chunk) -> int:
        """Blocks through the master port for ``chunk`` (C in, A/B rounds,
        C out)."""
        return chunk.comm_blocks

    def chunk_updates(self, chunk: Chunk) -> int:
        """Block updates (compute work) of ``chunk``."""
        return chunk.total_updates

    def plan_port_blocks(self, plan_or_chunks: Plan | Iterable[Chunk]) -> int:
        """Total port traffic (blocks) of a static plan or chunk set."""
        chunks = (
            plan_or_chunks.static_chunks
            if isinstance(plan_or_chunks, Plan)
            else plan_or_chunks
        )
        return sum(self.chunk_traffic(ch) for ch in chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class GridGeometry(PartitionGeometry):
    """The paper's square-chunk grid: ``mu``-wide column panels walked top
    to bottom.  Pure identity -- the default geometry is bit-identical to
    the pre-geometry planners (the golden walls pin this)."""

    name = "grid"

    def plan_grid(self, grid: BlockGrid) -> BlockGrid:
        return grid

    def finalize(self, plan: Plan, grid: BlockGrid) -> Plan:
        return plan


def transpose_chunk(chunk: Chunk) -> Chunk:
    """Reflect a chunk across the grid diagonal: ``(i0, h) <-> (j0, w)``,
    with each round's A/B payloads swapped (the transposed chunk's ``h``
    rows need ``h`` A blocks per ``k``, which were the original's B
    blocks).  Round count, k coverage, update counts -- and therefore the
    chunk's traffic and work -- are preserved."""
    rounds = tuple(
        RoundSpec(
            k_lo=rd.k_lo,
            k_hi=rd.k_hi,
            a_blocks=rd.b_blocks,
            b_blocks=rd.a_blocks,
            updates=rd.updates,
        )
        for rd in chunk.rounds
    )
    return Chunk(
        cid=chunk.cid,
        worker=chunk.worker,
        i0=chunk.j0,
        h=chunk.w,
        j0=chunk.i0,
        w=chunk.h,
        rounds=rounds,
    )


class LayerGeometry(PartitionGeometry):
    """Layer-based partition: horizontal layers of block rows, each walked
    left to right (Liu et al.).

    Implemented by planning on the transposed grid -- a layer of C is a
    column panel of ``C^T = B^T A^T`` -- and transposing every chunk back.
    The finalized plan's message sequence (C sends, A/B rounds, C returns,
    in the same port order with the same block counts) is identical to the
    transposed-grid plan's, so all engines and the adaptive wrapper run it
    unchanged.
    """

    name = "layer"
    suffix = "L"

    def plan_grid(self, grid: BlockGrid) -> BlockGrid:
        return BlockGrid(r=grid.s, t=grid.t, s=grid.r, q=grid.q)

    def finalize(self, plan: Plan, grid: BlockGrid) -> Plan:
        if plan.allocator is not None:
            raise ValueError(
                "layer geometry finalizes static plans only; demand-driven "
                "allocator plans are not supported"
            )
        plan.assignments = [
            [transpose_chunk(ch) for ch in queue] for queue in plan.assignments
        ]
        plan.meta["geometry"] = self.name
        return plan


#: Geometry factory per registry name.
GEOMETRIES: dict[str, Callable[[], PartitionGeometry]] = {
    "grid": GridGeometry,
    "layer": LayerGeometry,
}


def make_geometry(spec: "PartitionGeometry | str | None") -> PartitionGeometry:
    """Resolve a geometry: an instance passes through, a (case-insensitive)
    name is looked up in :data:`GEOMETRIES`, ``None`` means the default
    square-chunk grid."""
    if spec is None:
        return GridGeometry()
    if isinstance(spec, PartitionGeometry):
        return spec
    key = str(spec).strip().lower()
    try:
        factory = GEOMETRIES[key]
    except KeyError:
        raise KeyError(
            f"unknown geometry {spec!r}; known: {sorted(GEOMETRIES)}"
        ) from None
    return factory()


def audit_tiling(
    chunks: Sequence[Chunk], grid: BlockGrid, geometry: str | None = None
) -> None:
    """Geometry-aware tiling audit used by
    :func:`~repro.sim.validate.validate_dynamic`: dispatches on the
    recorded run's ``meta["geometry"]`` (default ``"grid"``); unknown
    geometry names are rejected rather than silently skipping the audit."""
    make_geometry(geometry).audit(chunks, grid)
