"""The single-worker maximum re-use algorithm of Section 3.

Used for the communication-volume study: all chunks go to one worker with
the *plain* maximum re-use layout (``1 + mu + mu^2 <= m``, no spare
buffers).  Per chunk the master sends ``mu^2`` C blocks, then for each
``k`` a row of ``mu`` B blocks followed by ``mu`` A blocks, and finally
retrieves the C blocks, for a communication-to-computation ratio of
``2/t + 2/mu`` block transfers per block update -- within a factor
``sqrt(32/27)`` of the lower bound ``sqrt(27/(8m))``.

Note on buffer accounting: the engine models a whole ``k``-round (``mu`` A
blocks + ``mu`` B blocks) as one message, so its transient occupancy is
``mu^2 + 2 mu`` blocks instead of the paper's ``mu^2 + mu + 1`` (A blocks
are streamed one at a time in the paper).  Port traffic, computation and
hence the CCR are identical; callers who want strict occupancy accounting
should provision ``m' = mu^2 + 2mu`` (see DESIGN.md).
"""

from __future__ import annotations

from ..core.blocks import BlockGrid
from ..core.chunks import Chunk, PanelAllocator, PanelCursor
from ..core.layout import max_reuse_mu
from ..platform.model import Platform
from ..sim.plan import Plan
from ..sim.policies import StrictOrderPolicy
from .base import Scheduler, SchedulingError

__all__ = ["MaxReuseSingleWorker"]


class MaxReuseSingleWorker(Scheduler):
    """Section 3's algorithm on a one-worker platform."""

    name = "MaxReuse1"

    def __init__(self, worker: int = 0) -> None:
        self.worker = worker

    @property
    def signature(self) -> str:
        sig = self.name if self.worker == 0 else f"{self.name}[w{self.worker}]"
        return self._objective_sig(sig)

    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        widx = self.worker
        if not 0 <= widx < platform.p:
            raise SchedulingError(f"worker {widx} not on the platform")
        try:
            mu = max_reuse_mu(platform[widx].m)
        except ValueError as exc:
            raise SchedulingError(str(exc)) from exc
        panels = PanelAllocator(grid.s)
        cursor = PanelCursor(widx, mu, grid)
        while not panels.exhausted:
            panel = panels.grant(mu)
            assert panel is not None
            cursor.add_panel(panel)
        chunks: list[Chunk] = []
        cid = 0
        while cursor.has_next:
            ch = cursor.next_chunk(cid)
            assert ch is not None
            chunks.append(ch)
            cid += 1
        order: list[int] = []
        for ch in chunks:
            order.extend([widx] * (2 + len(ch.rounds)))  # C_SEND, rounds, C_RETURN
        assignments: list[list[Chunk]] = [[] for _ in range(platform.p)]
        assignments[widx] = chunks
        return Plan(
            assignments=assignments,
            policy=StrictOrderPolicy(order),
            depths=[1] * platform.p,
            meta={"algorithm": self.name, "mu": mu},
        )
