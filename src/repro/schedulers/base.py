"""Scheduler interface.

A scheduler compiles ``(platform, grid)`` into a :class:`~repro.sim.plan.Plan`
(chunk assignments + port policy); running it through the one-port engine
yields a :class:`~repro.sim.engine.SimResult`.  All of the paper's seven
algorithms (Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM) implement this
interface, so experiments treat them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core.blocks import BlockGrid
from ..obs import stopwatch, trace
from ..platform.model import Platform
from ..sim.engine import SimResult, simulate
from ..sim.fastpath import fast_simulate
from ..sim.plan import Plan

__all__ = ["Scheduler", "SchedulingError"]


class SchedulingError(RuntimeError):
    """The algorithm cannot produce a schedule (e.g. no worker has enough
    memory for its layout)."""


class Scheduler(ABC):
    """Base class of all scheduling algorithms."""

    #: Short name used in reports (e.g. ``"Het"``); subclasses override.
    name: str = "?"

    #: Active scoring objective (:mod:`repro.experiments.objectives`);
    #: ``None`` means pure makespan.  Searching schedulers (Hom/HomI/Het)
    #: consult it when comparing candidates and fold it into their
    #: ``signature``; for the others it only informs reporting.
    objective = None

    @property
    def signature(self) -> str:
        """Configuration fingerprint used by the result cache
        (:mod:`repro.experiments.parallel`).  Subclasses whose behaviour
        depends on constructor arguments must fold them in (and should
        wrap their value in :meth:`_objective_sig`, since the adaptive
        wrapper's boundary decisions consult the objective even for
        schedulers whose static planning ignores it)."""
        return self._objective_sig(self.name)

    def _objective_sig(self, sig: str) -> str:
        """Fold a non-default objective into a signature string."""
        if self.objective is not None and not self.objective.is_makespan:
            sig = f"{sig}|{self.objective.signature}"
        return sig

    def with_objective(self, objective) -> "Scheduler":
        """Set the scoring objective (name, spec string, or
        :class:`~repro.experiments.objectives.Objective`) and return
        ``self`` -- the harness/sweeps use this to apply one objective to
        a whole suite."""
        from ..experiments.objectives import make_objective

        self.objective = make_objective(objective)
        return self

    @abstractmethod
    def plan(self, platform: Platform, grid: BlockGrid) -> Plan:
        """Compile a plan for ``grid`` on ``platform``.

        Raises :class:`SchedulingError` when the platform cannot support
        the algorithm's memory layout at all.
        """

    def run(
        self,
        platform: Platform,
        grid: BlockGrid,
        *,
        collect_events: bool = True,
        kernel=None,
    ) -> SimResult:
        """Plan and simulate; the result's ``meta`` records the algorithm
        name and the wall-clock planning time (the paper includes each
        algorithm's decision process in its measured times).

        Without event collection the plan is replayed on the fast path
        (:func:`~repro.sim.fastpath.fast_simulate`), which is bit-identical
        to the reference engine but an order of magnitude faster; asking
        for events selects the reference engine with its full traces.
        ``kernel`` picks a compiled simulation backend for the eventless
        replay (see :mod:`repro.sim.kernels`); it is ignored when events
        are collected, since only the reference engine produces traces.
        """
        with trace("plan", algorithm=self.name), stopwatch("plan.seconds") as sw:
            plan = self.plan(platform, grid)
        plan.collect_events = collect_events
        engine = "reference" if collect_events else "fast"
        with trace("simulate", algorithm=self.name, engine=engine):
            if collect_events:
                result = simulate(platform, plan, grid)
            else:
                result = fast_simulate(platform, plan, grid, kernel=kernel)
        result.meta.setdefault("algorithm", self.name)
        result.meta["planning_seconds"] = sw.elapsed
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
