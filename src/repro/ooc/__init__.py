"""Out-of-core matrix product (the paper's Section 8 closing question)."""

from .engine import BufferPool, OOCResult, OutOfCoreProduct
from .model import IOModel, io_lower_bound, max_reuse_io, toledo_io

__all__ = [
    "BufferPool",
    "OOCResult",
    "OutOfCoreProduct",
    "IOModel",
    "io_lower_bound",
    "max_reuse_io",
    "toledo_io",
]
