"""I/O-volume model for out-of-core matrix product (paper Section 8).

The paper closes by asking "whether our memory layout could prove useful in
the context of out-of-core algorithms".  The mapping is direct: the master
becomes the disk, the single worker becomes RAM with ``m`` block buffers,
and the communication volume becomes the I/O volume.  For a product with
``r x t``, ``t x s`` and ``r x s`` block operands:

* **maximum re-use** (chunk side ``mu``, ``1 + mu + mu^2 <= m``):
  every C block is read once and written once; every chunk streams
  ``mu`` A-blocks and ``mu`` B-blocks per ``k`` -- total
  ``2 r s + 2 t r s / mu`` block transfers;
* **Toledo thirds** (side ``sigma = sqrt(m/3)``): same shape with ``sigma``
  -- total ``2 r s + 2 t r s / sigma``, worse by ``~sqrt(3)`` in the
  streaming term;
* **lower bound**: ``r s t / sqrt(8 m / 27)`` transfers by the Section 3
  bound, plus the compulsory traffic ``r t + t s + 2 r s`` is a valid
  alternative floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.blocks import BlockGrid, ceil_div
from ..core.layout import max_reuse_mu, toledo_sigma
from ..theory.bounds import ccr_lower_bound

__all__ = ["IOModel", "max_reuse_io", "toledo_io", "io_lower_bound"]


@dataclass(frozen=True)
class IOModel:
    """Predicted block I/O of one out-of-core execution."""

    layout: str
    chunk_side: int
    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


def _chunks(grid: BlockGrid, side: int) -> list[tuple[int, int, int, int]]:
    """(i0, h, j0, w) tiling of C by side x side chunks."""
    out = []
    for j0 in range(0, grid.s, side):
        w = min(side, grid.s - j0)
        for i0 in range(0, grid.r, side):
            h = min(side, grid.r - i0)
            out.append((i0, h, j0, w))
    return out


def max_reuse_io(grid: BlockGrid, m: int) -> IOModel:
    """Exact predicted I/O of the maximum re-use layout (ragged aware)."""
    mu = max_reuse_mu(m)
    reads = writes = 0
    for _i0, h, _j0, w in _chunks(grid, mu):
        reads += h * w  # C in
        writes += h * w  # C out
        reads += grid.t * (h + w)  # A column + B row per k
    return IOModel("max-reuse", mu, reads, writes)


def toledo_io(grid: BlockGrid, m: int) -> IOModel:
    """Exact predicted I/O of the Toledo thirds layout (ragged aware)."""
    sigma = toledo_sigma(m)
    reads = writes = 0
    for _i0, h, _j0, w in _chunks(grid, sigma):
        reads += h * w
        writes += h * w
        reads += grid.t * (h + w)  # sigma-deep A/B tiles, t/sigma of them
    return IOModel("toledo", sigma, reads, writes)


def io_lower_bound(grid: BlockGrid, m: int) -> float:
    """Block-I/O floor: the CCR bound on the re-streamed traffic, never less
    than the compulsory volume (touch every operand once, C twice)."""
    compulsory = grid.a_blocks + grid.b_blocks + 2 * grid.c_blocks
    ccr_floor = grid.total_updates * ccr_lower_bound(m)
    return max(float(compulsory), ccr_floor)
