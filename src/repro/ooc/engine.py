"""Out-of-core executor with an audited buffer pool.

Matrices live in files (``numpy.memmap``); RAM is a :class:`BufferPool`
holding at most ``m`` blocks.  Every block that enters RAM counts as a
read; every dirty block leaving RAM counts as a write; exceeding the pool
capacity raises.  The two layouts of :mod:`repro.ooc.model` are implemented
as actual loops over the pool, so the predicted and measured I/O can be
compared block for block -- and the numerical result checked against
``C + A @ B``.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockGrid
from ..core.layout import max_reuse_mu, toledo_sigma
from .model import IOModel, max_reuse_io, toledo_io

__all__ = ["BufferPool", "OOCResult", "OutOfCoreProduct"]


class BufferPool:
    """RAM stand-in: at most ``capacity`` resident blocks, counted I/O."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.resident = 0
        self.peak = 0
        self.reads = 0
        self.writes = 0

    def load(self, blocks: int, data: np.ndarray) -> np.ndarray:
        """Bring ``blocks`` blocks into RAM (returns an in-RAM copy)."""
        self.resident += blocks
        self.peak = max(self.peak, self.resident)
        if self.resident > self.capacity:
            raise MemoryError(
                f"buffer pool overflow: {self.resident} > {self.capacity} blocks"
            )
        self.reads += blocks
        return np.array(data, copy=True)

    def evict(self, blocks: int, *, dirty: bool) -> None:
        """Drop ``blocks`` blocks from RAM, counting a write when dirty."""
        if blocks > self.resident:
            raise RuntimeError("evicting more blocks than resident")
        self.resident -= blocks
        if dirty:
            self.writes += blocks


@dataclass(frozen=True)
class OOCResult:
    """Outcome of one out-of-core run."""

    layout: str
    chunk_side: int
    reads: int
    writes: int
    peak_blocks: int
    max_error: float
    predicted: IOModel

    @property
    def total_io(self) -> int:
        return self.reads + self.writes

    def matches_prediction(self) -> bool:
        return self.reads == self.predicted.reads and self.writes == self.predicted.writes


class OutOfCoreProduct:
    """File-backed ``C <- C + A.B`` under a block-budgeted RAM pool."""

    def __init__(self, grid: BlockGrid, m: int, workdir: str | pathlib.Path | None = None):
        if m < 3:
            raise ValueError("need at least 3 block buffers")
        self.grid = grid
        self.m = m
        self._dir = pathlib.Path(workdir) if workdir else pathlib.Path(tempfile.mkdtemp(prefix="repro-ooc-"))
        self._dir.mkdir(parents=True, exist_ok=True)
        q = grid.q
        self.a = np.memmap(self._dir / "a.dat", dtype=np.float64, mode="w+", shape=(grid.r * q, grid.t * q))
        self.b = np.memmap(self._dir / "b.dat", dtype=np.float64, mode="w+", shape=(grid.t * q, grid.s * q))
        self.c = np.memmap(self._dir / "c.dat", dtype=np.float64, mode="w+", shape=(grid.r * q, grid.s * q))

    def fill_random(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Populate the files; returns the dense reference ``C + A @ B``."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.a[:] = rng.standard_normal(self.a.shape)
        self.b[:] = rng.standard_normal(self.b.shape)
        self.c[:] = rng.standard_normal(self.c.shape)
        return np.asarray(self.c) + np.asarray(self.a) @ np.asarray(self.b)

    # ------------------------------------------------------------------
    def _sl(self, lo: int, n: int) -> slice:
        return slice(lo * self.grid.q, (lo + n) * self.grid.q)

    def run_max_reuse(self, reference: np.ndarray | None = None) -> OOCResult:
        """The paper's layout: mu^2 C blocks resident, B rows of mu blocks,
        single A blocks streaming."""
        grid, q = self.grid, self.grid.q
        mu = max_reuse_mu(self.m)
        pool = BufferPool(self.m)
        for j0 in range(0, grid.s, mu):
            w = min(mu, grid.s - j0)
            for i0 in range(0, grid.r, mu):
                h = min(mu, grid.r - i0)
                c_chunk = pool.load(h * w, self.c[self._sl(i0, h), self._sl(j0, w)])
                for k in range(grid.t):
                    b_row = pool.load(w, self.b[self._sl(k, 1), self._sl(j0, w)])
                    for di in range(h):
                        a_blk = pool.load(1, self.a[self._sl(i0 + di, 1), self._sl(k, 1)])
                        c_chunk[di * q : (di + 1) * q, :] += a_blk @ b_row
                        pool.evict(1, dirty=False)
                    pool.evict(w, dirty=False)
                self.c[self._sl(i0, h), self._sl(j0, w)] = c_chunk
                pool.evict(h * w, dirty=True)
        return self._result("max-reuse", mu, pool, max_reuse_io(grid, self.m), reference)

    def run_toledo(self, reference: np.ndarray | None = None) -> OOCResult:
        """Toledo thirds: square sigma x sigma tiles of A, B and C."""
        grid = self.grid
        sigma = toledo_sigma(self.m)
        pool = BufferPool(self.m)
        for j0 in range(0, grid.s, sigma):
            w = min(sigma, grid.s - j0)
            for i0 in range(0, grid.r, sigma):
                h = min(sigma, grid.r - i0)
                c_chunk = pool.load(h * w, self.c[self._sl(i0, h), self._sl(j0, w)])
                for k0 in range(0, grid.t, sigma):
                    d = min(sigma, grid.t - k0)
                    a_tile = pool.load(h * d, self.a[self._sl(i0, h), self._sl(k0, d)])
                    b_tile = pool.load(d * w, self.b[self._sl(k0, d), self._sl(j0, w)])
                    c_chunk += a_tile @ b_tile
                    pool.evict(h * d, dirty=False)
                    pool.evict(d * w, dirty=False)
                self.c[self._sl(i0, h), self._sl(j0, w)] = c_chunk
                pool.evict(h * w, dirty=True)
        return self._result("toledo", sigma, pool, toledo_io(grid, self.m), reference)

    def _result(
        self,
        layout: str,
        side: int,
        pool: BufferPool,
        predicted: IOModel,
        reference: np.ndarray | None,
    ) -> OOCResult:
        err = float("nan")
        if reference is not None:
            err = float(np.max(np.abs(np.asarray(self.c) - reference)))
        return OOCResult(
            layout=layout,
            chunk_side=side,
            reads=pool.reads,
            writes=pool.writes,
            peak_blocks=pool.peak,
            max_error=err,
            predicted=predicted,
        )

    def cleanup(self) -> None:
        """Release the memmaps and delete the backing files."""
        paths = [self._dir / name for name in ("a.dat", "b.dat", "c.dat")]
        del self.a, self.b, self.c
        for path in paths:
            path.unlink(missing_ok=True)
