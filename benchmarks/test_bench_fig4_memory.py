"""Figure 4: heterogeneous memory (256/512/1024 MB), five matrix sizes.

Paper shape: ODDOML and Het best makespans; OMMOML ~2x worst; Hom, HomI,
ORROML and BMM roughly 20% slower; relative work ranking OMMOML (thrifty),
then HomI <= Hom / Het, then ODDOML/ORROML, BMM worst.  Het ~2000 s on the
smallest product, ~3500 s on the largest.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_figure
from repro.experiments.report import format_relative_table, format_summary


def test_fig4_memory_heterogeneous(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_figure("fig4", bench_scale, **bench_runner), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            f"[fig4] scale={bench_scale} (paper: ODDOML/Het best cost; OMMOML ~2x; "
            "others ~1.2x; work: OMMOML < HomI/Het/Hom < ODDOML/ORROML < BMM)",
            format_relative_table(result, "cost"),
            format_relative_table(result, "work"),
            format_summary(result, "cost"),
            format_summary(result, "work"),
            "absolute Het makespans (paper ~2000s smallest, ~3500s largest): "
            + ", ".join(
                f"{m.instance}={m.makespan:.0f}s"
                for m in result.measurements
                if m.algorithm == "Het"
            ),
        ]
    )
    emit("fig4_memory", text)
    cost = result.summary("cost")
    assert cost["ODDOML"]["mean"] <= 1.2
    assert cost["OMMOML"]["mean"] >= 1.3
