"""Ablation: the eight Het selection variants head-to-head.

Paper: "There is no reason for one of these heuristics to always dominate
the others" -- all eight are simulated and the best is executed; "80% of the
time, the performance of Het was in fact obtained thanks to a global
resource selection".
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.core.blocks import BlockGrid
from repro.experiments.figures import fig7_instances
from repro.schedulers.selection import ALL_VARIANTS, build_plan_from_sequence, incremental_selection
from repro.sim.engine import simulate


def _variant_matrix(scale: float):
    insts = fig7_instances(scale)
    rows = {}
    wins = {v.label: 0 for v in ALL_VARIANTS}
    for inst in insts:
        makespans = {}
        for variant in ALL_VARIANTS:
            outcome = incremental_selection(inst.platform, inst.grid, variant)
            plan = build_plan_from_sequence(inst.platform, inst.grid, outcome)
            plan.collect_events = False
            makespans[variant.label] = simulate(inst.platform, plan, inst.grid).makespan
        best = min(makespans.values())
        winner = min(makespans, key=makespans.get)
        wins[winner] += 1
        rows[inst.label] = {k: v / best for k, v in makespans.items()}
    return rows, wins


def test_variant_ablation(benchmark, bench_scale, emit):
    rows, wins = benchmark.pedantic(
        lambda: _variant_matrix(bench_scale), rounds=1, iterations=1
    )
    labels = [v.label for v in ALL_VARIANTS]
    lines = [
        "Het variant ablation on the 12 fully heterogeneous platforms "
        "(relative makespan, 1.000 = best variant per platform)",
        f"{'platform':<16}" + "".join(f"{l:>13}" for l in labels),
    ]
    for inst, vals in rows.items():
        lines.append(f"{inst:<16}" + "".join(f"{vals[l]:>13.3f}" for l in labels))
    global_wins = sum(n for l, n in wins.items() if l.startswith("global"))
    lines.append(
        f"wins: {wins} -> global-scope wins {global_wins}/12 (paper: global ~80%)"
    )
    emit("ablation_variants", "\n".join(lines))
    assert sum(wins.values()) == 12
