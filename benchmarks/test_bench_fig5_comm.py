"""Figure 5: heterogeneous links (10/5/1 Mbps), five matrix sizes.

Paper shape: Het, HomI and OMMOML have excellent makespans and good
resource selection; Hom performs close to ODDOML; BMM is worst, 70-90%
above the best makespan.  Het ~2500 s smallest, ~5000 s largest.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_figure
from repro.experiments.report import format_relative_table, format_summary


def test_fig5_comm_heterogeneous(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_figure("fig5", bench_scale, **bench_runner), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            f"[fig5] scale={bench_scale} (paper: Het/HomI/OMMOML best cost; BMM worst "
            "at 1.7-1.9x; resource selection dominates relative work)",
            format_relative_table(result, "cost"),
            format_relative_table(result, "work"),
            format_summary(result, "cost"),
            format_summary(result, "work"),
            "absolute Het makespans (paper ~2500s smallest, ~5000s largest): "
            + ", ".join(
                f"{m.instance}={m.makespan:.0f}s"
                for m in result.measurements
                if m.algorithm == "Het"
            ),
        ]
    )
    emit("fig5_comm", text)
    cost = result.summary("cost")
    assert cost["Het"]["mean"] <= 1.15
    assert cost["BMM"]["mean"] == max(v["mean"] for v in cost.values())
