"""Extension benchmark: straggler sensitivity (a negative result for Het).

One worker of an otherwise homogeneous 8-worker platform slows down by a
growing factor.  Finding: the *threshold* selectors (Hom, HomI) and the
*completion-time* selector (OMMOML) fence the straggler off completely,
while Het's ratio-based incremental selection inherits it -- a worker's
compute speed is invisible to the port-time ratios until it has already
been granted columns, and at paper scale ``mu >= r`` means a single
selection hands out a full panel.  The demand-driven and round-robin
heuristics degrade the same way.  This failure mode is outside the paper's
evaluation (its Figure 6 slows half the platform by only 4x, where Het
copes); the benchmark documents it as a limitation of the ratio criteria.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.sweeps import straggler_sweep

SLOWDOWNS = (1.0, 2.0, 4.0, 8.0, 16.0)


def test_straggler_sweep(benchmark, bench_scale, bench_runner, emit):
    scale = min(bench_scale, 0.5)
    sweep = benchmark.pedantic(
        lambda: straggler_sweep(SLOWDOWNS, scale=scale, **bench_runner), rounds=1, iterations=1
    )
    text = (
        f"Straggler sweep (one of 8 workers slowed; scale {scale}; relative cost, "
        "1.000 = best per slowdown)\n" + sweep.table() + "\n"
        "finding: threshold (Hom/HomI) and completion-time (OMMOML) selection fence\n"
        "the straggler off; ratio-based incremental selection (Het) and the blind\n"
        "heuristics (ORROML/ODDOML) inherit its pace -- see EXPERIMENTS.md"
    )
    emit("straggler_sweep", text)
    base, hit = sweep.points[0], sweep.points[-1]

    def growth(alg: str) -> float:
        return hit.makespans[alg] / base.makespans[alg]

    # threshold/completion selectors absorb the straggler ...
    assert growth("Hom") <= 1.2
    assert growth("HomI") <= 1.2
    assert growth("OMMOML") <= 1.2
    # ... the ratio-based and blind algorithms inherit it (documented limitation)
    assert growth("Het") >= 2.0
    assert growth("ORROML") >= 2.0
