"""Threaded runtime: real parallel block arithmetic end to end.

Not a paper figure -- demonstrates the full stack (schedule -> one-port
master -> worker threads -> numpy GEMMs) and benchmarks its wall time on a
modest instance.
"""

import numpy as np

from repro.core.blocks import BlockGrid
from repro.execution.executor import random_instance, reference_product
from repro.platform.model import Platform, Worker
from repro.runtime.local import ThreadedRuntime
from repro.schedulers.demand_driven import ODDOMLScheduler


def test_threaded_runtime(benchmark, emit):
    grid = BlockGrid(r=8, t=8, s=16, q=32)  # 256 x 512 elements
    plat = Platform(
        [Worker(0, 1.0, 1.0, 45), Worker(1, 0.7, 1.5, 60), Worker(2, 1.4, 0.8, 32)]
    )
    res = ODDOMLScheduler().run(plat, grid)
    a, b, c = random_instance(grid, rng=2024)
    want = reference_product(a, b, c)

    def run():
        got, stats = ThreadedRuntime().execute(res, grid, a, b, c)
        return got, stats

    got, stats = benchmark(run)
    err = float(np.max(np.abs(got - want)))
    emit(
        "runtime_threaded",
        f"threaded runtime: {stats.messages} messages, "
        f"{stats.total_updates} block updates across {len(stats.updates_per_worker)} "
        f"workers, max|err| = {err:.2e}",
    )
    assert err < 1e-9 * grid.t * grid.q
