"""Figure 7: fully heterogeneous platforms (ratio-2, ratio-4, ten random).

Paper shape: Het best on 10 of 12 platforms and never more than 9% off the
best; every other algorithm is at least once >41% away (ORROML up to 88%,
OMMOML up to 215%, HomI up to 80% / 34% on average); ODDOML reasonable on
average but poor relative work.  Het 2700-6000 s.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_figure
from repro.experiments.report import format_relative_table, format_summary


def test_fig7_fully_heterogeneous(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_figure("fig7", bench_scale, **bench_runner), rounds=1, iterations=1
    )
    rel = result.relative("cost")
    het_wins = sum(
        1
        for inst in result.instances
        if all(
            rel[("Het", inst)] <= rel[(alg, inst)] + 1e-12
            for alg in result.algorithms
            if (alg, inst) in rel
        )
    )
    het_worst = max(rel[("Het", inst)] for inst in result.instances)
    text = "\n\n".join(
        [
            f"[fig7] scale={bench_scale} (paper: Het best on 10/12 platforms, worst "
            "case +9%; every other algorithm >41% off at least once)",
            format_relative_table(result, "cost"),
            format_relative_table(result, "work"),
            format_summary(result, "cost"),
            f"Het wins {het_wins}/12 platforms; Het worst-case relative cost "
            f"{het_worst:.3f} (paper 1.09)",
        ]
    )
    emit("fig7_fully_het", text)
    assert het_wins >= 6
    assert het_worst <= 1.5
