"""Extension benchmark: out-of-core I/O volume, measured vs modeled.

Regenerates the Section 8 answer: block I/O of the maximum re-use layout vs
Toledo's thirds vs the sqrt(27/(8m)) floor, on file-backed matrices with an
audited buffer pool (measured I/O must equal the closed-form model).
"""

from repro.core.blocks import BlockGrid
from repro.ooc import OutOfCoreProduct, io_lower_bound

GRID = BlockGrid(r=10, t=8, s=15, q=4)
MEMORIES = (21, 48, 111)


def _run():
    rows = []
    for m in MEMORIES:
        p1 = OutOfCoreProduct(GRID, m)
        r1 = p1.run_max_reuse(p1.fill_random(rng=m))
        p2 = OutOfCoreProduct(GRID, m)
        r2 = p2.run_toledo(p2.fill_random(rng=m))
        rows.append((m, io_lower_bound(GRID, m), r1, r2))
        p1.cleanup()
        p2.cleanup()
    return rows


def test_out_of_core_io(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"Out-of-core I/O volume (blocks), {GRID}",
        f"{'m':>6}{'floor':>8}{'max-reuse':>11}{'toledo':>9}{'ratio':>7}",
    ]
    for m, lb, r1, r2 in rows:
        lines.append(
            f"{m:>6}{lb:>8.0f}{r1.total_io:>11}{r2.total_io:>9}"
            f"{r2.total_io / r1.total_io:>7.2f}"
        )
    lines.append("paper: the layout's sqrt(3) streaming advantage carries to out-of-core")
    emit("ooc_io", "\n".join(lines))
    for m, lb, r1, r2 in rows:
        assert r1.matches_prediction() and r2.matches_prediction()
        assert lb <= r1.total_io < r2.total_io
        assert r1.max_error < 1e-9
