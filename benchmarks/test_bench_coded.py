"""Extension benchmark: coded redundancy vs replanning on stochastic timelines.

Races the coded-redundancy family (``Coded`` fixed-rate, ``CodedRL``
rateless; see :mod:`repro.schedulers.coded`) against the adaptive family's
replanning modes across the four stochastic timeline families (straggler,
bandwidth, crash, mixed) at the canonical severities.  The coded runs
report makespan *and* wasted work — the updates and port blocks spent on
redundant shares beyond the ``k`` per stripe the decode actually used.

Headline (stochastic crash-recovery at the canonical 0.2 outage, scale
1.0, seed 0): rateless coding with ``k=2``, one spare share per stripe,
beats the *adaptive* (replanning) mode of both base algorithms — spare
shares absorb the outages that replanning must react to, at a single-digit
percent wasted-work premium.  On the straggler family coding beats
Het-adaptive but not the demand-driven base: when migration granularity is
fine, replanning keeps the edge, matching the EXPERIMENTS.md guidance.
"""

import random

import pytest

pytestmark = pytest.mark.slow  # run with `pytest -m slow`

from repro.experiments.sweeps import CANONICAL_SEVERITIES, dynamic_scenario
from repro.schedulers.adaptive import AdaptiveScheduler
from repro.schedulers.coded import CodedScheduler, RatelessCodedScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.dynamic import DynamicStall, random_timeline
from repro.theory.steady_state import makespan_lower_bound

SEED = 0
BASES = ("Het", "ODDOML")
MODES = ("oblivious", "adaptive", "clairvoyant")
CODED = (("Coded", CodedScheduler), ("CodedRL", RatelessCodedScheduler))
DECODE_K = 2  # k=2 keeps the code's extra C traffic at ~1.4x, not 4x
REDUNDANCY = 1


def _stochastic_instance(scenario: str, family: str, scale: float):
    """Platform/grid of the named scenario + a seeded stochastic timeline
    of ``family`` (mirrors dynamic_sweep's stochastic mode)."""
    severity = CANONICAL_SEVERITIES[scenario]
    platform, grid, _scripted = dynamic_scenario(scenario, severity, scale=scale)
    rng = random.Random(f"{SEED}|{scenario}|{severity!r}")
    horizon = makespan_lower_bound(platform, grid)
    if family == "crash":
        timeline = random_timeline(
            rng, "crash", platform, horizon, rate=3.0, outage_frac=severity
        )
    else:
        timeline = random_timeline(
            rng, family, platform, horizon, rate=3.0, severity=max(severity, 1.5)
        )
    return platform, grid, timeline


def _race(platform, grid, timeline) -> dict:
    """One family's race: replanning modes vs the coded pair."""
    out: dict[str, dict] = {}
    for name in BASES:
        for mode in MODES:
            try:
                sim = AdaptiveScheduler(make_scheduler(name), mode).run_dynamic(
                    platform, grid, timeline
                )
            except DynamicStall:
                continue
            out[f"{name}:{mode}"] = {"makespan": sim.makespan}
    for label, cls in CODED:
        sched = cls(redundancy=REDUNDANCY, k=DECODE_K)
        try:
            sim = sched.run_dynamic(platform, grid, timeline)
        except DynamicStall:
            continue
        coded = sim.meta["dynamic"]["coded"]
        out[label] = {
            "makespan": sim.makespan,
            "k": coded["k"],
            "redundancy": coded["redundancy"],
            "shares_returned": coded["shares_returned"],
            "useful_updates": coded["useful_updates"],
            "wasted_updates": coded["wasted_updates"],
            "useful_blocks": coded["useful_blocks"],
            "wasted_blocks": coded["wasted_blocks"],
        }
    return out


def _table(results: dict[str, dict]) -> str:
    lines = [f"{'entry':>18}{'makespan':>12}{'wasted upd':>12}{'wasted blk':>12}"]
    for entry, row in results.items():
        wu = row.get("wasted_updates")
        wb = row.get("wasted_blocks")
        lines.append(
            f"{entry:>18}{row['makespan']:>12.1f}"
            f"{wu if wu is not None else '-':>12}"
            f"{wb if wb is not None else '-':>12}"
        )
    return "\n".join(lines)


def test_coded_vs_replanning_crash(benchmark, bench_scale, emit):
    """The headline race: stochastic crash-recovery at the canonical 0.2
    outage.  Pinned at scale 1.0 — smaller grids hold so few stripes that
    the code's fixed C-traffic overhead dominates the comparison."""
    scale = 1.0
    platform, grid, timeline = _stochastic_instance("crash-recovery", "crash", scale)
    results = benchmark.pedantic(
        lambda: _race(platform, grid, timeline), rounds=1, iterations=1
    )
    text = (
        f"Coded redundancy vs replanning — stochastic crash-recovery "
        f"(outage {CANONICAL_SEVERITIES['crash-recovery']:g}x bound, seed "
        f"{SEED}, scale {scale}, k={DECODE_K}, r={REDUNDANCY})\n"
        + _table(results)
        + "\nfinding: rateless coding beats the adaptive (replanning) mode of "
        "both bases\non outages -- spare shares absorb crashes that "
        "replanning must react to"
    )
    emit(
        "coded_vs_replanning_crash",
        text,
        data={
            "scenario": "crash-recovery",
            "family": "crash",
            "severity": CANONICAL_SEVERITIES["crash-recovery"],
            "seed": SEED,
            "scale": scale,
            "k": DECODE_K,
            "redundancy": REDUNDANCY,
            "results": results,
        },
    )
    # the acceptance headline: coded beats mode="adaptive" at canonical
    # severity on this stochastic crash scenario
    best_coded = min(results[label]["makespan"] for label, _ in CODED)
    for base in BASES:
        assert best_coded < results[f"{base}:adaptive"]["makespan"], (
            best_coded,
            base,
            results[f"{base}:adaptive"],
        )
    # wasted work is reported and the rateless variant wastes least
    assert results["CodedRL"]["wasted_updates"] >= 0
    assert results["CodedRL"]["wasted_updates"] <= results["Coded"]["wasted_updates"]


def test_coded_vs_replanning_straggler(benchmark, bench_scale, emit):
    scale = 1.0
    platform, grid, timeline = _stochastic_instance(
        "straggler-onset", "straggler", scale
    )
    results = benchmark.pedantic(
        lambda: _race(platform, grid, timeline), rounds=1, iterations=1
    )
    text = (
        f"Coded redundancy vs replanning — stochastic stragglers "
        f"(severity {CANONICAL_SEVERITIES['straggler-onset']:g}x, seed {SEED}, "
        f"scale {scale}, k={DECODE_K}, r={REDUNDANCY})\n" + _table(results)
        + "\nfinding: coding beats Het's replanning but not the demand-driven "
        "base --\nfine migration granularity keeps replanning ahead of the "
        "code's traffic premium"
    )
    emit(
        "coded_vs_replanning_straggler",
        text,
        data={
            "scenario": "straggler-onset",
            "family": "straggler",
            "severity": CANONICAL_SEVERITIES["straggler-onset"],
            "seed": SEED,
            "scale": scale,
            "k": DECODE_K,
            "redundancy": REDUNDANCY,
            "results": results,
        },
    )
    best_coded = min(results[label]["makespan"] for label, _ in CODED)
    assert best_coded < results["Het:adaptive"]["makespan"]


@pytest.mark.parametrize("family", ["bandwidth", "mixed"])
def test_coded_vs_replanning_other_families(benchmark, bench_scale, emit, family):
    """Bandwidth collapse and the mixed process: artifact coverage of the
    remaining stochastic families (no headline claim — the code has no
    structural edge when the port itself is the degraded resource)."""
    scenario = "bandwidth-degradation" if family == "bandwidth" else "straggler-onset"
    scale = min(bench_scale, 0.5)
    platform, grid, timeline = _stochastic_instance(scenario, family, scale)
    results = benchmark.pedantic(
        lambda: _race(platform, grid, timeline), rounds=1, iterations=1
    )
    emit(
        f"coded_vs_replanning_{family}",
        f"Coded redundancy vs replanning — stochastic {family} family "
        f"(seed {SEED}, scale {scale}, k={DECODE_K}, r={REDUNDANCY})\n"
        + _table(results),
        data={
            "scenario": scenario,
            "family": family,
            "seed": SEED,
            "scale": scale,
            "k": DECODE_K,
            "redundancy": REDUNDANCY,
            "results": results,
        },
    )
    for label, _ in CODED:
        assert results[label]["makespan"] > 0
        assert results[label]["wasted_updates"] >= 0
        assert results[label]["wasted_blocks"] >= 0
