"""Extension benchmark: relative cost vs degree of heterogeneity.

The paper evaluates ratios 2 and 4 (Figure 7); this sweep varies the
large/small parameter ratio from ~1 (homogeneous) to 8 and tracks each
algorithm's relative cost, Het's enrollment and Het's distance to the
steady-state bound -- showing *where* heterogeneity-awareness starts to pay.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.sweeps import heterogeneity_sweep

RATIOS = (1.01, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)


def test_heterogeneity_sweep(benchmark, bench_scale, bench_runner, emit):
    scale = min(bench_scale, 0.5)  # the sweep runs 7 ratios x 7 algorithms
    sweep = benchmark.pedantic(
        lambda: heterogeneity_sweep(RATIOS, scale=scale, **bench_runner), rounds=1, iterations=1
    )
    text = (
        f"Heterogeneity sweep (fully-het platforms, scale {scale}; relative cost, "
        "1.000 = best per ratio)\n" + sweep.table() + "\n"
        "paper data points: ratio 2 and ratio 4 are Figure 7's first two columns"
    )
    emit("heterogeneity_sweep", text)
    # Het remains within a modest envelope of the best at every ratio ...
    assert all(pt.relative("Het") <= 1.6 for pt in sweep.points)
    # ... while the heterogeneity-blind baselines degrade sharply with ratio
    last = sweep.points[-1]
    assert max(last.relative("BMM"), last.relative("ORROML")) >= 1.8
    assert last.relative("ORROML") > sweep.points[0].relative("ORROML")
