"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures at the true
paper scale (override with ``REPRO_BENCH_SCALE``), times it with
pytest-benchmark, prints the measured series next to the paper's reported
shape, and archives the text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Problem scale for the figure benchmarks (1.0 = the paper's sizes)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_runner() -> dict:
    """Experiment-runner options from the environment, passed through to
    ``run_figure``/``run_summary``/the sweeps by every figure benchmark:

    * ``REPRO_BENCH_PARALLEL``: worker-process count (``auto`` = one per
      core; unset/``0``/``1`` = in-process serial execution);
    * ``REPRO_BENCH_CACHE``: content-addressed result-cache directory
      (reruns become lookups);
    * ``REPRO_BENCH_ENGINE``: ``fast`` (default) / ``reference`` /
      ``batch`` simulation engine;
    * ``REPRO_BENCH_KERNEL``: kernel backend for the fast/batch engines
      (``numpy`` default / ``numba`` / ``c`` / ``python`` — see
      :mod:`repro.sim.kernels`; unavailable backends fall back to numpy
      with a warning).

    E.g. ``REPRO_BENCH_PARALLEL=auto pytest -m slow`` records multi-core
    numbers on a multi-core machine, and ``REPRO_BENCH_KERNEL=numba``
    records compiled-backend numbers.
    """
    raw = os.environ.get("REPRO_BENCH_PARALLEL", "").strip()
    if not raw:
        parallel = None
    elif raw == "auto":
        parallel = "auto"
    else:
        try:
            n = int(raw)
        except ValueError:
            n = -1
        if n < 0:
            raise pytest.UsageError(
                f"REPRO_BENCH_PARALLEL must be a non-negative integer or "
                f"'auto', got {raw!r}"
            )
        parallel = n if n >= 2 else None
    cache = os.environ.get("REPRO_BENCH_CACHE", "").strip() or None
    engine = os.environ.get("REPRO_BENCH_ENGINE", "").strip() or "fast"
    from repro.experiments.harness import ENGINES

    if engine not in ENGINES:
        raise pytest.UsageError(
            f"REPRO_BENCH_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    kernel = os.environ.get("REPRO_BENCH_KERNEL", "").strip() or None
    if kernel is not None:
        from repro.sim.kernels import KERNEL_NAMES

        if kernel not in KERNEL_NAMES:
            raise pytest.UsageError(
                f"REPRO_BENCH_KERNEL must be one of {KERNEL_NAMES}, got {kernel!r}"
            )
    return {"parallel": parallel, "cache": cache, "engine": engine, "kernel": kernel}


@pytest.fixture(scope="session")
def emit(bench_runner):
    """Print a result table and archive it under benchmarks/results/.

    With ``data``, a machine-readable ``BENCH_<name>.json`` document is
    written next to the text table; CI uploads ``benchmarks/results/`` as a
    workflow artifact, so these JSON snapshots accumulate a measurement
    trajectory across runs.  Every JSON payload records the *active* kernel
    backend (post-fallback) plus uniform host/run metadata
    (:func:`repro.obs.run_metadata`: python/numpy versions, cpu count,
    machine, git describe) and a metrics-registry snapshot, so
    compiled-backend entries in the perf trajectory are distinguishable
    from numpy ones and numbers from different hosts never get conflated.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    from repro.obs import run_metadata, snapshot

    meta = run_metadata(kernel=bench_runner["kernel"])

    def _emit(name: str, text: str, data: dict | None = None) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            import json

            payload = {
                "benchmark": name,
                "kernel": meta["kernel"],  # kept top-level for older readers
                "meta": meta,
                "metrics": snapshot(),
                "data": data,
            }
            (RESULTS_DIR / f"BENCH_{name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )

    return _emit
