"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures at the true
paper scale (override with ``REPRO_BENCH_SCALE``), times it with
pytest-benchmark, prints the measured series next to the paper's reported
shape, and archives the text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Problem scale for the figure benchmarks (1.0 = the paper's sizes)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def emit():
    """Print a result table and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
