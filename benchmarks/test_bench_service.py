"""Multi-process scheduling service: job throughput on a sharded pool.

Not a paper figure -- measures the service's reason to exist: a queue of
matrix-product jobs finishes faster when the threshold search admits them
onto disjoint shards of the worker-process pool than when the same pool
serves them one at a time.  Both runs move real numpy blocks through
``multiprocessing`` queues and every output is checked against C + A @ B.
"""

import os
import time

import numpy as np

from repro.core.blocks import BlockGrid
from repro.execution.executor import random_instance, reference_product
from repro.platform.model import Platform
from repro.service import SchedulingService

POOL_SIZE = 8


def _run(platform, grid, jobs, *, serial, seed):
    rng = np.random.default_rng(seed)
    with SchedulingService(
        platform,
        algorithm="HomI",
        max_concurrent_jobs=1 if serial else None,
    ) as svc:
        specs = [svc.make_job(grid, *random_instance(grid, rng)) for _ in range(jobs)]
        t0 = time.perf_counter()
        stats = svc.run_jobs(specs)
        wall = time.perf_counter() - t0
    by_id = {s.job_id: s for s in specs}
    err = max(
        float(
            np.max(
                np.abs(
                    r.output
                    - reference_product(by_id[r.job_id].a, by_id[r.job_id].b, by_id[r.job_id].c)
                )
            )
        )
        for r in stats.per_job
    )
    return stats, wall, err


def test_service_throughput(bench_scale, emit):
    scale = min(bench_scale, 1.0)
    jobs = max(4, round(6 * scale))
    grid = BlockGrid(r=6, t=6, s=12, q=max(8, round(48 * scale)))
    platform = Platform.homogeneous(POOL_SIZE, 1.0, 1.0, 45, name="service-pool")

    conc, wall_c, err_c = _run(platform, grid, jobs, serial=False, seed=2026)
    ser, wall_s, err_s = _run(platform, grid, jobs, serial=True, seed=2026)

    # the tentpole acceptance: >= 2 jobs actually shared the pool, on
    # disjoint shards, and every output was exact
    assert conc.max_concurrent >= 2, "no two jobs ever ran concurrently"
    assert ser.max_concurrent == 1
    assert conc.failures == 0 and ser.failures == 0
    tol = 1e-9 * grid.t * grid.q
    assert err_c < tol and err_s < tol

    speedup = wall_s / wall_c
    cores = os.cpu_count() or 1
    lines = [
        f"scheduling service throughput ({jobs} jobs, grid {grid}, "
        f"pool of {POOL_SIZE} workers, HomI admission, {cores} host cores)",
        "",
        f"{'mode':<12}{'wall s':>9}{'jobs/s':>9}{'GFLOP/s':>10}"
        f"{'peak jobs':>11}{'pool util':>11}",
    ]
    for label, st, wall in (("concurrent", conc, wall_c), ("serial", ser, wall_s)):
        lines.append(
            f"{label:<12}{wall:>9.3f}{st.jobs_per_second:>9.2f}"
            f"{st.gflops:>10.3f}{st.max_concurrent:>11d}"
            f"{st.pool_utilization:>10.1%}"
        )
    lines += [
        "",
        f"sharded-concurrency speedup: {speedup:.2f}x "
        f"(max |err| vs C + A @ B: {max(err_c, err_s):.2e})",
    ]
    if cores < 2:
        lines.append(
            "note: single-core host -- concurrent shards time-slice one "
            "CPU, so the speedup column measures overhead, not parallelism"
        )
    emit(
        "service_throughput",
        "\n".join(lines),
        data={
            "jobs": jobs,
            "grid": {"r": grid.r, "t": grid.t, "s": grid.s, "q": grid.q},
            "pool_size": POOL_SIZE,
            "algorithm": "HomI",
            "speedup": speedup,
            "concurrent": {
                "wall_seconds": wall_c,
                "jobs_per_second": conc.jobs_per_second,
                "gflops": conc.gflops,
                "max_concurrent": conc.max_concurrent,
                "pool_utilization": conc.pool_utilization,
                "shards": [list(r.shard) for r in conc.per_job],
            },
            "serial": {
                "wall_seconds": wall_s,
                "jobs_per_second": ser.jobs_per_second,
                "gflops": ser.gflops,
                "max_concurrent": ser.max_concurrent,
                "pool_utilization": ser.pool_utilization,
            },
            "max_abs_err": max(err_c, err_s),
        },
    )
