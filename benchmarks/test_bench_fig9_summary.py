"""Figure 9: cross-experiment summary.

Paper headline numbers: our memory layout alone (ODDOML vs BMM) gains 19%
of execution time on average; adding resource selection (Het) brings it to
27%; Het is on average 1% away from the best makespan (14% at worst, vs
61% for ODDOML and 128% for BMM); Het stays within 2.29x of the
steady-state throughput bound on average (3.42x at worst).
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_summary
from repro.experiments.report import format_fig9


def test_fig9_summary(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_summary(bench_scale, **bench_runner), rounds=1, iterations=1
    )
    text = f"[fig9] scale={bench_scale}\n\n" + format_fig9(result)
    emit("fig9_summary", text)

    per_inst: dict[str, dict[str, float]] = {}
    for m in result.measurements:
        per_inst.setdefault(m.instance, {})[m.algorithm] = m.makespan

    def mean_gain(a: str, b: str) -> float:
        gains = [
            1 - v[a] / v[b] for v in per_inst.values() if a in v and b in v and v[b] > 0
        ]
        return sum(gains) / len(gains)

    assert mean_gain("Het", "BMM") > 0.10  # paper: 27%
    assert mean_gain("ODDOML", "BMM") > 0.05  # paper: 19%
    ratios = result.bound_ratios("Het")
    assert 1.0 <= sum(ratios) / len(ratios) <= 4.5  # paper: 2.29
    cost = result.summary("cost")
    assert cost["Het"]["mean"] <= 1.3  # paper: 1.01
