"""Extension benchmark: geometry ladder and cost-objective sweep.

Two questions the geometry/objective decoupling makes answerable:

* **Geometry ladder** — on fully heterogeneous platforms, what does
  cutting C into horizontal layers (Liu et al.'s layer-based partition,
  registered as ``HomL``/``HomIL``/``HetL``) cost or save against the
  paper's square-chunk grid?  The ladder runs both variants of each search
  algorithm on the same instances under makespan-identical scoring and
  records makespan plus dollar cost (default cloud pricing:
  $1e-4/worker-second, $1/GB through the port).
* **Cost-objective sweep** — re-running the same suite with
  ``objective="cost"``, how many dollars does optimizing for cost instead
  of completion time recover?  Pinned acceptance: the cost objective never
  produces a pricier schedule than the makespan objective.

``BENCH_geometry_ladder.json`` archives both tables in the established
trajectory schema.
"""

import pytest

pytestmark = pytest.mark.slow  # run with `pytest -m slow`

from repro.experiments.figures import fig7_instances
from repro.experiments.harness import run_experiment
from repro.experiments.objectives import BlendedObjective, CostObjective
from repro.schedulers.registry import layer_suite

#: ratio-2, ratio-4 and the first two seeded random platforms of Figure 7.
N_INSTANCES = 4

#: grid algorithm -> layer variant, the rungs of the ladder.
PAIRS = {"Hom": "HomL", "HomI": "HomIL", "Het": "HetL"}


def _tables(result):
    """{algorithm: {instance: {"makespan": ..., "dollars": ...}}}"""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for m in result.measurements:
        out.setdefault(m.algorithm, {})[m.instance] = {
            "makespan": m.makespan,
            "dollars": m.meta["dollars"],
            "workers": m.n_enrolled,
        }
    return out


def test_geometry_ladder(benchmark, bench_scale, bench_runner, emit):
    scale = min(bench_scale, 0.5)  # 6 schedulers x 4 instances x 2 objectives
    instances = fig7_instances(scale)[:N_INSTANCES]
    # dollar_weight=0 orders candidates exactly by makespan (the golden
    # semantics) while still pricing every measurement in dollars
    priced_makespan = BlendedObjective(dollar_weight=0.0, cost=CostObjective())

    def _run():
        ladder = run_experiment(
            "geometry-ladder", instances, layer_suite(),
            objective=priced_makespan, **bench_runner,
        )
        sweep = run_experiment(
            "cost-objective-sweep", instances, layer_suite(),
            objective="cost", **bench_runner,
        )
        return ladder, sweep

    ladder, sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    lad, swp = _tables(ladder), _tables(sweep)

    lines = [
        f"Geometry ladder (fig7 platforms, scale {scale}; grid vs layer partition,",
        "makespan objective; dollars at $1e-4/worker-s + $1/GB port traffic)",
        f"{'instance':<22}{'algorithm':<8}{'grid ms':>12}{'layer ms':>12}"
        f"{'layer/grid':>11}{'grid $':>10}{'layer $':>10}",
    ]
    for grid_name, layer_name in PAIRS.items():
        for inst in lad.get(grid_name, {}):
            if inst not in lad.get(layer_name, {}):
                continue
            g, l = lad[grid_name][inst], lad[layer_name][inst]
            lines.append(
                f"{inst:<22}{grid_name:<8}{g['makespan']:>12.2f}{l['makespan']:>12.2f}"
                f"{l['makespan'] / g['makespan']:>11.3f}"
                f"{g['dollars']:>10.4f}{l['dollars']:>10.4f}"
            )
    lines += [
        "",
        f"Cost-objective sweep (same suite, objective=cost; $ makespan-opt -> $ cost-opt)",
    ]
    for name in sorted(swp):
        for inst in sorted(swp[name]):
            if inst not in lad.get(name, {}):
                continue
            lines.append(
                f"{inst:<22}{name:<8}{lad[name][inst]['dollars']:>10.4f} -> "
                f"{swp[name][inst]['dollars']:.4f}"
            )
    text = "\n".join(lines)
    emit(
        "geometry_ladder",
        text,
        data={
            "scale": scale,
            "pairs": PAIRS,
            "pricing": {"worker_rate": 1e-4, "byte_rate": 1e-9},
            "ladder": lad,
            "cost_sweep": swp,
        },
    )

    # every rung of the ladder ran: both geometries for every pair
    for grid_name, layer_name in PAIRS.items():
        assert lad[grid_name] and lad[layer_name], (grid_name, layer_name)
        assert set(lad[grid_name]) == set(lad[layer_name])
    # cost-optimal is never pricier than makespan-optimal (same candidates,
    # argmin over dollars vs argmin over makespan)
    for name, table in swp.items():
        for inst, row in table.items():
            assert row["dollars"] <= lad[name][inst]["dollars"] + 1e-12, (name, inst)
    # and the trade-off is real somewhere: some schedule got strictly cheaper
    assert any(
        swp[name][inst]["dollars"] < lad[name][inst]["dollars"] - 1e-12
        for name in swp
        for inst in swp[name]
    )
