"""Section 4: impact of the start-up (C I/O) overhead.

Paper: sequentializing C sends/receives loses 2cP time units every tw,
bounded by mu/t + 2c/(tw); the worked example (c=2, w=4.5, mu=4, t=100,
P=5) loses at most ~4%.  The benchmark verifies the analytic estimate
against a simulation with and without C traffic.
"""

from repro.core.blocks import BlockGrid
from repro.platform.model import Platform
from repro.schedulers.homogeneous import HomScheduler
from repro.sim.engine import simulate
from repro.theory.overhead import c_io_overhead, paper_example


def _measured_overhead() -> tuple[float, float]:
    """Simulated fraction of time attributable to C traffic for the paper's
    example parameters, vs the analytic estimate."""
    c, w, mu, t = 2.0, 4.5, 4, 100
    m = mu * mu + 4 * mu
    est = c_io_overhead(c, w, mu, t)
    plat = Platform.homogeneous(est.n_workers, c, w, m)
    grid = BlockGrid(r=mu, t=t, s=mu * est.n_workers * 3)
    sched = HomScheduler()
    with_c = sched.run(plat, grid, collect_events=False).makespan
    plan = sched.plan(plat, grid)
    plan.collect_events = False
    from repro.sim.worker_state import CMode

    plan.c_mode = CMode.NONE
    # strip C messages from the strict order: each chunk batch loses its
    # C_SEND and C_RETURN slots
    from repro.schedulers.selection import usable_mus  # noqa: F401  (doc import)

    order = plan.policy.order
    # rebuild: every worker occurrence count per chunk drops by 2
    new_order = []
    counts: dict[int, int] = {}
    per_chunk = t + 2
    for widx in order:
        k = counts.get(widx, 0) % per_chunk
        counts[widx] = counts.get(widx, 0) + 1
        if k == 0 or k == per_chunk - 1:
            continue  # C_SEND / C_RETURN slot
        new_order.append(widx)
    from repro.sim.policies import StrictOrderPolicy

    plan.policy = StrictOrderPolicy(new_order)
    without_c = simulate(plat, plan, grid).makespan
    return (with_c - without_c) / with_c, est.fraction


def test_overhead_example(benchmark, emit):
    measured, estimated = benchmark.pedantic(_measured_overhead, rounds=1, iterations=1)
    est = paper_example()
    text = "\n".join(
        [
            "Section 4 start-up overhead (c=2, w=4.5, mu=4, t=100)",
            f"enrolled workers P        : {est.n_workers} (paper: 5)",
            f"analytic loss fraction    : {est.fraction:.3%} (paper: ~4%)",
            f"analytic bound mu/t+2c/tw : {est.fraction_bound:.3%}",
            f"simulated C-I/O fraction  : {measured:.3%}",
        ]
    )
    emit("overhead", text)
    assert est.n_workers == 5
    assert measured <= est.fraction_bound + 0.02
