"""Extension benchmark: blocked LU driven by each MM scheduler.

Not a paper figure -- the paper's conclusion proposes adapting the approach
to LU; this quantifies the adaptation: total LU makespan per MM scheduler
used for the trailing updates, and the share of time the updates take
(which is what the paper's machinery optimizes).
"""

from repro.lu.schedule import simulate_lu
from repro.platform.generators import memory_heterogeneous, scale_platform

ALGOS = ("Hom", "Het", "ORROML", "OMMOML", "ODDOML", "BMM")


def test_lu_scheduler_comparison(benchmark, emit):
    platform = scale_platform(memory_heterogeneous(), 0.25)

    def run():
        return {alg: simulate_lu(platform, n_blocks=24, mm_algorithm=alg) for alg in ALGOS}

    sims = benchmark.pedantic(run, rounds=1, iterations=1)
    best = min(s.makespan for s in sims.values())
    lines = [
        "Blocked LU (24x24 blocks) on the memory-het platform, by trailing-update scheduler",
        f"{'scheduler':<10}{'makespan':>12}{'relative':>10}{'update share':>14}",
    ]
    for alg, sim in sims.items():
        lines.append(
            f"{alg:<10}{sim.makespan:>11.1f}s{sim.makespan / best:>10.3f}"
            f"{sim.update_fraction:>14.0%}"
        )
    lines.append(
        "note: at t=1 the trailing update has no C re-use to exploit, so the "
        "layout gap between max re-use and Toledo collapses (see examples/lu_factorization.py)"
    )
    emit("lu_schedulers", "\n".join(lines))
    assert all(sim.makespan > 0 for sim in sims.values())
    spread = max(s.makespan for s in sims.values()) / best
    assert spread < 3.0  # all schedulers remain in the same ballpark at t=1
