"""Extension benchmark: dynamic platforms — oblivious vs adaptive vs
clairvoyant scheduling.

Three scenario families from the dynamics subsystem
(:mod:`repro.experiments.sweeps`): a straggler that *sets in* mid-run, a
mid-run bandwidth collapse on two links, and a crash/rejoin outage.  For
each, every base algorithm is evaluated oblivious (plan once on the
initial platform), adaptive (online rescheduling at event boundaries) and
clairvoyant (plan on the final platform) — quantifying both what ignoring
platform dynamics costs and how much of it online rescheduling recovers.

Headline (straggler-onset, 16x): the oblivious modes of Het and the
demand-driven heuristic degrade by >= 2x over the clairvoyant reference,
while their adaptive modes recover to within 1.3x of it — the ratio-based
and demand-driven algorithms are rescuable online even though their static
selection is straggler-blind (see ``test_bench_straggler.py``).
"""

import pytest

pytestmark = pytest.mark.slow  # run with `pytest -m slow`

from repro.experiments.sweeps import dynamic_sweep

SEVERITIES = (2.0, 4.0, 8.0, 16.0)
ALGORITHMS = ("Het", "ODDOML", "Hom", "ORROML")


def _json_point(pt):
    return {
        "severity": pt.severity,
        "bound": pt.bound,
        "makespans": pt.makespans,
    }


def test_dynamic_straggler_onset(benchmark, bench_scale, emit):
    # pinned at the canonical scale: smaller grids hold so few chunks per
    # worker that migration granularity (not the algorithms) dominates the
    # ratios, and the whole sweep is only a few seconds anyway
    scale = 1.0
    sweep = benchmark.pedantic(
        lambda: dynamic_sweep(
            "straggler-onset", SEVERITIES, algorithms=ALGORITHMS, scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    text = (
        f"Straggler onset mid-run (one of 8 workers slows at 0.3x the bound; "
        f"scale {scale})\n" + sweep.table() + "\n"
        "finding: oblivious Het/ODDOML inherit the straggler (obl/clv >= 2 at "
        "16x)\nwhile online rescheduling recovers to <= 1.3x clairvoyant -- "
        "see EXPERIMENTS.md"
    )
    emit(
        "dynamic_straggler_onset",
        text,
        data={
            "scenario": "straggler-onset",
            "scale": scale,
            "points": [_json_point(pt) for pt in sweep.points],
        },
    )
    hit = sweep.points[-1]  # 16x
    for alg in ("Het", "ODDOML"):
        obl = hit.makespans[alg]["oblivious"]
        adp = hit.makespans[alg]["adaptive"]
        clv = hit.makespans[alg]["clairvoyant"]
        # the oblivious mode degrades >= 2x over the clairvoyant reference...
        assert obl >= 2.0 * clv, (alg, obl, clv)
        # ... and online rescheduling recovers to <= 1.3x of it
        assert adp <= 1.3 * clv, (alg, adp, clv)


def test_dynamic_bandwidth_degradation(benchmark, bench_scale, emit):
    scale = min(bench_scale, 1.0)
    sweep = benchmark.pedantic(
        lambda: dynamic_sweep(
            "bandwidth-degradation", SEVERITIES, algorithms=("Het", "ODDOML"), scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    text = (
        f"Bandwidth degradation mid-run (two links degrade; scale {scale})\n"
        + sweep.table()
    )
    emit(
        "dynamic_bandwidth_degradation",
        text,
        data={
            "scenario": "bandwidth-degradation",
            "scale": scale,
            "points": [_json_point(pt) for pt in sweep.points],
        },
    )
    hit = sweep.points[-1]
    for alg in ("Het", "ODDOML"):
        # adaptive never loses to oblivious (it may fall back to "continue")
        assert hit.makespans[alg]["adaptive"] <= hit.makespans[alg]["oblivious"] * 1.01


def test_dynamic_crash_recovery(benchmark, bench_scale, emit):
    scale = min(bench_scale, 1.0)
    sweep = benchmark.pedantic(
        lambda: dynamic_sweep(
            "crash-recovery", (0.1, 0.2, 0.4), algorithms=("Het", "ODDOML"), scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    text = (
        f"Crash/rejoin outage (worker 0 out for a bound-fraction; scale "
        f"{scale})\n" + sweep.table()
    )
    emit(
        "dynamic_crash_recovery",
        text,
        data={
            "scenario": "crash-recovery",
            "scale": scale,
            "points": [_json_point(pt) for pt in sweep.points],
        },
    )
    hit = sweep.points[-1]
    for alg in ("Het", "ODDOML"):
        assert hit.makespans[alg]["adaptive"] <= hit.makespans[alg]["oblivious"] * 1.01
