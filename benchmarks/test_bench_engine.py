"""Simulator performance: one-port engine event throughput.

Not a paper figure -- this guards the substrate that every experiment rests
on: a paper-scale figure must stay interactive (hundreds of thousands of
port messages per second).  The kernel-ladder tests time the same strict /
ready recurrence through every rung of the execution stack -- per-run
scalar fast path, per-step numpy batch, and each available compiled
kernel backend (see :mod:`repro.sim.kernels`) -- asserting the rungs stay
bit-identical while the compiled ones get faster.
"""

import time

import numpy as np

from repro.core.blocks import BlockGrid
from repro.platform.generators import memory_heterogeneous
from repro.schedulers.demand_driven import ODDOMLScheduler
from repro.schedulers.heterogeneous import HetScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.batch import BatchEngine, _plan_steps
from repro.sim.fastpath import fast_simulate
from repro.sim.kernels import available_backends, get_backend
from repro.sim.plan import Plan
from repro.sim.policies import ReadyPolicy, StrictOrderPolicy


def test_engine_throughput_oddoml(benchmark, emit):
    """Messages/second through the demand-driven engine at paper scale."""
    plat = memory_heterogeneous()
    grid = BlockGrid.paper_instance(80_000)
    sched = ODDOMLScheduler()

    def run():
        return sched.run(plat, grid, collect_events=False)

    res = benchmark(run)
    n_msgs = sum(st.chunks for st in res.worker_stats) * (grid.t + 2)
    emit(
        "engine_throughput",
        f"ODDOML paper-scale simulation: ~{n_msgs} port messages, "
        f"{res.total_updates} block updates simulated",
    )
    assert res.total_updates == grid.total_updates


def test_het_planning_cost(benchmark, emit):
    """Full Het planning (8 selection variants + 8 trial simulations)."""
    plat = memory_heterogeneous()
    grid = BlockGrid.paper_instance(80_000)
    sched = HetScheduler()
    plan = benchmark.pedantic(lambda: sched.plan(plat, grid), rounds=1, iterations=1)
    emit(
        "het_planning",
        f"Het planning at paper scale: variant={plan.meta['variant']}, "
        f"selections={plan.meta['selections']}, "
        f"enrolled={plan.meta['enrolled']}",
    )
    assert plan.meta["variant"] in plan.meta["variant_makespans"]


# ----------------------------------------------------------------------
# the kernel ladder: scalar -> per-step numpy -> compiled whole-run
# ----------------------------------------------------------------------
_LADDER_B = 16
_LADDER_ROUNDS = 5


def _clone(plan: Plan) -> Plan:
    if isinstance(plan.policy, StrictOrderPolicy):
        policy = StrictOrderPolicy(plan.policy.order)
    else:
        policy = ReadyPolicy(plan.policy.priority)
    return Plan(
        assignments=[list(chunks) for chunks in plan.assignments],
        policy=policy,
        depths=list(plan.depths),
        c_mode=plan.c_mode,
        collect_events=False,
    )


def _time_engine(engine: BatchEngine, rounds: int = _LADDER_ROUNDS) -> float:
    """Best-of-N wall time of one full batch replay (state restored between
    rounds, so compile cost is excluded)."""
    token = engine.checkpoint()
    best = float("inf")
    for _ in range(rounds):
        engine.restore(token)
        t0 = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - t0)
    return best


def _ladder(scheduler_name: str):
    """Time one paper-scale plan population through every ladder rung.

    Returns ``(steps_per_plan, rows)`` where each row is
    ``(label, seconds, warmup_seconds or None, makespans)``.
    """
    plat = memory_heterogeneous()
    grid = BlockGrid.paper_instance(80_000)
    plan = make_scheduler(scheduler_name).plan(plat, grid)
    plan.collect_events = False
    runs = [(plat, _clone(plan)) for _ in range(_LADDER_B)]

    rows = []
    t0 = time.perf_counter()
    scalar = [fast_simulate(p, _clone(pl)).makespan for p, pl in runs]
    rows.append(("scalar", time.perf_counter() - t0, None, np.array(scalar)))

    numpy_engine = BatchEngine(runs)
    rows.append(("numpy", _time_engine(numpy_engine), None, numpy_engine.makespans()))

    for name in available_backends():
        if name == "numpy":
            continue
        backend = get_backend(name)
        t0 = time.perf_counter()
        backend.ensure_ready()  # JIT compile / build+load, timed separately
        warmup = time.perf_counter() - t0
        engine = BatchEngine(
            [(plat, _clone(plan)) for _ in range(_LADDER_B)], kernel=backend
        )
        rows.append((name, _time_engine(engine), warmup, engine.makespans()))
    return _plan_steps(plan), rows


def _report_ladder(name: str, scheduler_name: str, emit) -> None:
    steps, rows = _ladder(scheduler_name)
    base = dict((label, secs) for label, secs, _w, _m in rows)["numpy"]
    reference = rows[0][3]
    lines = [
        f"{name}: {scheduler_name} plan, {steps} steps x {_LADDER_B} instances "
        f"(best of {_LADDER_ROUNDS})"
    ]
    data = {"steps": steps, "batch": _LADDER_B, "rungs": {}}
    for label, secs, warmup, makespans in rows:
        assert np.array_equal(makespans, reference), label  # bit-identical
        extra = f", warm-up {warmup * 1e3:.1f} ms" if warmup is not None else ""
        lines.append(
            f"  {label:>7}: {secs * 1e3:8.2f} ms  ({base / secs:6.1f}x vs numpy{extra})"
        )
        data["rungs"][label] = {
            "seconds": secs,
            "speedup_vs_numpy": base / secs,
            "warmup_seconds": warmup,
        }
    emit(name, "\n".join(lines), data=data)
    # real compiled backends must beat the per-step numpy path handily;
    # the interpreted `python` rung is a debugging oracle, not a target
    for label, secs, _w, _m in rows:
        if label in ("numba", "c"):
            assert base / secs >= 3.0, (label, base / secs)


def test_kernel_ladder_strict(emit):
    """Compiled-vs-numpy-vs-scalar ladder on the strict-order recurrence."""
    _report_ladder("kernel_ladder_strict", "Hom", emit)


def test_kernel_ladder_ready(emit):
    """The same ladder through the ready-mode lexicographic selection."""
    _report_ladder("kernel_ladder_ready", "ORROML", emit)
