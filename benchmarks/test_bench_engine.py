"""Simulator performance: one-port engine event throughput.

Not a paper figure -- this guards the substrate that every experiment rests
on: a paper-scale figure must stay interactive (hundreds of thousands of
port messages per second).
"""

from repro.core.blocks import BlockGrid
from repro.platform.generators import memory_heterogeneous
from repro.schedulers.demand_driven import ODDOMLScheduler
from repro.schedulers.heterogeneous import HetScheduler


def test_engine_throughput_oddoml(benchmark, emit):
    """Messages/second through the demand-driven engine at paper scale."""
    plat = memory_heterogeneous()
    grid = BlockGrid.paper_instance(80_000)
    sched = ODDOMLScheduler()

    def run():
        return sched.run(plat, grid, collect_events=False)

    res = benchmark(run)
    n_msgs = sum(st.chunks for st in res.worker_stats) * (grid.t + 2)
    emit(
        "engine_throughput",
        f"ODDOML paper-scale simulation: ~{n_msgs} port messages, "
        f"{res.total_updates} block updates simulated",
    )
    assert res.total_updates == grid.total_updates


def test_het_planning_cost(benchmark, emit):
    """Full Het planning (8 selection variants + 8 trial simulations)."""
    plat = memory_heterogeneous()
    grid = BlockGrid.paper_instance(80_000)
    sched = HetScheduler()
    plan = benchmark.pedantic(lambda: sched.plan(plat, grid), rounds=1, iterations=1)
    emit(
        "het_planning",
        f"Het planning at paper scale: variant={plan.meta['variant']}, "
        f"selections={plan.meta['selections']}, "
        f"enrolled={plan.meta['enrolled']}",
    )
    assert plan.meta["variant"] in plan.meta["variant_makespans"]
