"""Extension benchmark: scenario-aware threshold re-selection vs
migrate-only adaptation for the virtual-platform algorithms (Hom/HomI).

The canonical reselect scenarios are the dynamic-platform straggler-onset
and bandwidth-degradation events made *transient*: the degradation sets in
at 0.3× the steady-state bound and the affected workers recover at 0.6×
(``dynamic_scenario(recover_frac=0.6)``).  Transience is exactly where
generic migration is structurally blind: a recovery boundary has **no**
suspects — nothing is degraded any more — so ``mode="adaptive"`` never
reconsiders its earlier migration and the recovered worker idles for the
rest of the run.  ``mode="reselect"`` re-runs the Hom/HomI
virtual-platform threshold search at *every* boundary on the current
parameters (one shared-prefix incremental batch per boundary — the
executed history simulates once, only the candidate replanned tails
replay), so at recovery it re-enrolls the healed worker and re-spreads the
untouched panels.

Headline (scale 1.0, severity 8): reselect recovers 15-20% of makespan
over migrate-only adaptation for both Hom and HomI on both transient
scenarios, moving their adaptive gaps into the territory the Het/ODDOML
adaptive modes reach on the permanent-degradation scenarios (see
``test_bench_dynamic.py`` and EXPERIMENTS.md).  On the *permanent*
single-event scenarios reselect never loses: there the straggler's
un-killable in-flight chunk is the online floor and every online mode
converges to it.
"""

import pytest

pytestmark = pytest.mark.slow  # run with `pytest -m slow`

from repro.experiments.sweeps import dynamic_sweep

SEVERITIES = (4.0, 8.0, 16.0)
ALGORITHMS = ("Hom", "HomI")
MODES = ("oblivious", "adaptive", "reselect", "clairvoyant")


def _json_point(pt):
    return {
        "severity": pt.severity,
        "bound": pt.bound,
        "makespans": pt.makespans,
    }


def _run(benchmark, scenario, scale):
    return benchmark.pedantic(
        lambda: dynamic_sweep(
            scenario,
            SEVERITIES,
            algorithms=ALGORITHMS,
            modes=MODES,
            scale=scale,
            recover_frac=0.6,
        ),
        rounds=1,
        iterations=1,
    )


def test_reselect_straggler_onset_recovery(benchmark, emit):
    # pinned at the canonical scale (REPRO_BENCH_SCALE deliberately not
    # honored, like test_bench_dynamic's straggler acceptance): smaller
    # grids leave too few chunks per worker for the re-spread granularity
    # to matter, and the full-scale sweep takes only seconds
    scale = 1.0
    sweep = _run(benchmark, "straggler-onset", scale)
    text = (
        f"Transient straggler (onset at 0.3x bound, recovery at 0.6x; scale "
        f"{scale})\n" + sweep.table() + "\n"
        "finding: at the recovery boundary there are no suspects, so "
        "migrate-only\nadaptation leaves the healed worker idle; threshold "
        "re-selection re-enrolls it\n(15-20% makespan recovered) -- see "
        "EXPERIMENTS.md"
    )
    emit(
        "reselect_straggler_onset",
        text,
        data={
            "scenario": "straggler-onset",
            "recover_frac": 0.6,
            "scale": scale,
            "points": [_json_point(pt) for pt in sweep.points],
        },
    )
    for pt in sweep.points:
        for alg in ALGORITHMS:
            adp = pt.makespans[alg]["adaptive"]
            rsl = pt.makespans[alg]["reselect"]
            # reselect's candidate set is a superset scored on probes of
            # the same state: it can never lose ...
            assert rsl <= adp, (alg, pt.severity, rsl, adp)
    # ... and at the canonical severity it must strictly beat migrate-only
    hit = sweep.points[1]  # severity 8 == CANONICAL_SEVERITIES
    for alg in ALGORITHMS:
        adp = hit.makespans[alg]["adaptive"]
        rsl = hit.makespans[alg]["reselect"]
        assert rsl < 0.95 * adp, (alg, rsl, adp)


def test_reselect_bandwidth_degradation_recovery(benchmark, emit):
    scale = 1.0
    sweep = _run(benchmark, "bandwidth-degradation", scale)
    text = (
        f"Transient bandwidth collapse on two links (onset 0.3x, recovery "
        f"0.6x; scale {scale})\n" + sweep.table()
    )
    emit(
        "reselect_bandwidth_degradation",
        text,
        data={
            "scenario": "bandwidth-degradation",
            "recover_frac": 0.6,
            "scale": scale,
            "points": [_json_point(pt) for pt in sweep.points],
        },
    )
    for pt in sweep.points:
        for alg in ALGORITHMS:
            assert pt.makespans[alg]["reselect"] <= pt.makespans[alg]["adaptive"], (
                alg,
                pt.severity,
            )
    hit = sweep.points[1]  # severity 8
    for alg in ALGORITHMS:
        adp = hit.makespans[alg]["adaptive"]
        rsl = hit.makespans[alg]["reselect"]
        assert rsl < 0.95 * adp, (alg, rsl, adp)
