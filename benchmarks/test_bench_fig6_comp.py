"""Figure 6: heterogeneous CPU speeds (S, S/2, S/4), five matrix sizes.

Paper shape: BMM performs rather well but stays above Het; ODDOML performs
well; work gaps widen because our algorithms enroll fewer resources; Het
enrolls more workers as the matrix grows.  Het ~2000 s smallest, ~4000 s
largest.
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_figure
from repro.experiments.report import format_relative_table, format_summary


def test_fig6_comp_heterogeneous(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_figure("fig6", bench_scale, **bench_runner), rounds=1, iterations=1
    )
    het_enrolled = [
        (m.instance, m.n_enrolled) for m in result.measurements if m.algorithm == "Het"
    ]
    text = "\n\n".join(
        [
            f"[fig6] scale={bench_scale} (paper: ODDOML good, BMM decent but above "
            "Het; Het enrolls more workers as s grows)",
            format_relative_table(result, "cost"),
            format_relative_table(result, "work"),
            format_summary(result, "cost"),
            format_summary(result, "work"),
            "Het enrollment by size: " + ", ".join(f"{i}={n}" for i, n in het_enrolled),
            "absolute Het makespans (paper ~2000s smallest, ~4000s largest): "
            + ", ".join(
                f"{m.instance}={m.makespan:.0f}s"
                for m in result.measurements
                if m.algorithm == "Het"
            ),
        ]
    )
    emit("fig6_comp", text)
    cost = result.summary("cost")
    assert cost["ODDOML"]["mean"] <= 1.4
