"""Table 1 (steady-state LP) and Table 2 (memory infeasibility).

Paper: the LP's bandwidth-centric solution sorts workers by 2c_i/mu_i and
achieves rho = sum 1/w_i over enrolled workers -- but needs buffers growing
without bound (Table 2), which is why Het selects resources by simulation.
"""

from repro.experiments.table2 import achieved_fraction, table2_demo
from repro.platform.generators import memory_heterogeneous
from repro.theory.steady_state import bandwidth_centric, steady_state_lp


def test_lp_closed_form(benchmark, emit):
    plat = memory_heterogeneous()
    sol = benchmark(lambda: bandwidth_centric(plat))
    lp = steady_state_lp(plat)
    text = "\n".join(
        [
            "Table 1 steady-state LP on the memory-het platform",
            f"closed-form rho = {sol.rho:.3f} upd/s, scipy rho = {lp.rho:.3f}",
            "enrollment order (by 2c/mu): " + ", ".join(f"P{i + 1}" for i in sol.order),
            "rates: "
            + ", ".join(
                f"P{r.worker + 1}: x={r.x:.2f} port={r.port_fraction:.2f}"
                f"{'*' if r.saturated else ''}"
                for r in sol.rates
                if r.x > 0
            ),
        ]
    )
    emit("steady_state_lp", text)
    assert abs(sol.rho - lp.rho) <= 1e-9 * max(1.0, sol.rho)


def test_table2_infeasibility(benchmark, emit):
    rows = benchmark.pedantic(lambda: table2_demo(), rounds=1, iterations=1)
    lines = [
        "Table 2: buffers needed to realize the bandwidth-centric rates",
        f"{'x':>5}{'rho':>9}{'required mu':>13}{'memory (blocks)':>17}",
    ]
    for row in rows:
        lines.append(
            f"{row.x:>5g}{row.rho:>9.4f}"
            f"{str(row.required_mu):>13}{str(row.required_memory):>17}"
        )
    lines.append("fraction of bound at mu=2: " + ", ".join(
        f"x={x:g}:{achieved_fraction(x, 2):.2f}" for x in (2.0, 4.0, 8.0)
    ))
    lines.append("paper: the LP solution cannot be realized with fixed memory as x grows")
    text = "\n".join(lines)
    emit("table2_infeasibility", text)
    mus = [row.required_mu for row in rows]
    assert all(mu is not None for mu in mus)
    assert mus[0] < mus[-1]
