"""Ablation: what the overlapped layout's double buffering actually buys.

The paper's design argument: two spare rounds of buffers (mu^2 + 4mu
layout) let a worker's communication overlap its computation; Toledo's
layout has no spare buffers and serializes.  We quantify by running the
*same* demand-driven schedule with prefetch depth 2 vs 1, and the strict
Algorithm-1 order vs the ready-order policy.
"""

from repro.core.blocks import BlockGrid
from repro.platform.generators import memory_heterogeneous, scale_grid, scale_platform
from repro.schedulers.demand_driven import ODDOMLScheduler
from repro.schedulers.homogeneous import HomScheduler
from repro.sim.engine import simulate


def _depth_ablation(scale: float):
    plat = scale_platform(memory_heterogeneous(), scale) if scale != 1.0 else memory_heterogeneous()
    grid = scale_grid(BlockGrid.paper_instance(80_000), scale)
    sched = ODDOMLScheduler()
    out = {}
    for depth in (1, 2, 3, 4):
        plan = sched.plan(plat, grid)
        plan.depths = [depth] * plat.p
        plan.collect_events = False
        out[depth] = simulate(plat, plan, grid).makespan
    return out


def test_prefetch_depth(benchmark, bench_scale, emit):
    res = benchmark.pedantic(lambda: _depth_ablation(bench_scale), rounds=1, iterations=1)
    base = res[2]
    lines = ["Prefetch-depth ablation (demand-driven schedule, memory-het platform)"]
    for depth, mk in sorted(res.items()):
        lines.append(f"  depth {depth}: makespan {mk:>10.1f}s ({mk / base:>6.3f}x of depth 2)")
    lines.append("depth 1 = Toledo-style no overlap; depth 2 = the paper's layout")
    emit("ablation_prefetch", "\n".join(lines))
    assert res[1] >= res[2] - 1e-9  # overlap never hurts
    assert res[2] <= res[1]  # double buffering is the win
    # diminishing returns beyond the paper's choice
    assert abs(res[3] - res[2]) / base < abs(res[1] - res[2]) / base + 1e-9


def test_strict_vs_ready_order(benchmark, bench_scale, emit):
    """Algorithm 1's fixed order vs opportunistic ready-order service of the
    same homogeneous chunk assignment."""
    plat = (
        scale_platform(memory_heterogeneous(), bench_scale)
        if bench_scale != 1.0
        else memory_heterogeneous()
    )
    grid = scale_grid(BlockGrid.paper_instance(80_000), bench_scale)

    def run():
        from repro.sim.policies import ReadyPolicy, selection_order_priority

        sched = HomScheduler()
        strict_plan = sched.plan(plat, grid)
        strict_plan.collect_events = False
        strict = simulate(plat, strict_plan, grid).makespan
        ready_plan = sched.plan(plat, grid)
        ready_plan.policy = ReadyPolicy(selection_order_priority)
        ready_plan.collect_events = False
        ready = simulate(plat, ready_plan, grid).makespan
        return strict, ready

    strict, ready = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_port_order",
        "Port service ablation (Hom assignment, memory-het platform)\n"
        f"  strict Algorithm-1 order : {strict:>10.1f}s\n"
        f"  ready-order service      : {ready:>10.1f}s ({ready / strict:.3f}x)",
    )
    # Algorithm 1's interleaving is already near-optimal: ready order should
    # not beat it by much, nor lose by much
    assert 0.8 <= ready / strict <= 1.2
