"""Figure 8: the real 20-worker platform, B 8000 x 320000.

Paper shape: on the Aug-2007 configuration (uniform 1 GB memory) all
algorithms but BMM achieve similar makespans and the selecting algorithms
use 11 of 20 workers; on the Nov-2006 configuration (two families at
256 MB) the picture matches the memory-heterogeneous case -- ODDOML and Het
best, OMMOML ~60% worse, Het using only the ten 1 GB workers (~7800 s).
"""

import pytest

pytestmark = pytest.mark.slow  # full paper scale; run with `pytest -m slow`

from repro.experiments.figures import run_figure
from repro.experiments.report import format_relative_table, format_summary


def test_fig8_real_platform(benchmark, bench_scale, bench_runner, emit):
    result = benchmark.pedantic(
        lambda: run_figure("fig8", bench_scale, **bench_runner), rounds=1, iterations=1
    )
    enrollment = {
        (m.algorithm, m.instance): m.n_enrolled for m in result.measurements
    }
    text = "\n\n".join(
        [
            f"[fig8] scale={bench_scale} (paper: Aug-2007 all similar but BMM, "
            "selectors use 11/20 workers; Nov-2006 like the memory-het case, Het "
            "on the ten 1 GB workers, ~7800 s)",
            format_relative_table(result, "cost"),
            format_relative_table(result, "work"),
            format_summary(result, "cost"),
            "enrollment: "
            + ", ".join(f"{a}@{i}={n}" for (a, i), n in sorted(enrollment.items())),
            "absolute Het makespans: "
            + ", ".join(
                f"{m.instance}={m.makespan:.0f}s"
                for m in result.measurements
                if m.algorithm == "Het"
            ),
        ]
    )
    emit("fig8_real", text)
    cost = result.relative("cost")
    # Het must stay competitive on both configurations
    assert all(cost[("Het", inst)] <= 1.35 for inst in result.instances)
    # Nov-2006: Het leaves the 256 MB workers out (uses at most the 10 big ones
    # plus possibly a few small ones -- the paper reports exactly 10)
    assert enrollment[("Het", "real-nov2006")] <= 14
