"""Observability overhead guard: disabled tracing must stay near-free.

The instrumentation in the hot paths (``trace`` spans, ``stopwatch``
timers, registry counters — see :mod:`repro.obs`) is compiled into the
production code unconditionally; what keeps it safe is the disabled fast
path: with no tracer installed, ``trace()`` is one global read returning a
shared no-op singleton.  This benchmark measures the per-call cost of each
disabled primitive, multiplies by the number of instrument sites a
simulation actually crosses, and asserts the total stays under 2% of the
kernel-ladder workload it rides on.  Runs in tier-1 (not marked slow) so
a regression in the fast path cannot hide until the next perf run.
"""

import time

from repro.core.blocks import BlockGrid
from repro.obs import counter, stopwatch, trace, tracing_enabled
from repro.platform.generators import memory_heterogeneous, scale_grid, scale_platform
from repro.schedulers.registry import make_scheduler
from repro.sim.batch import BatchEngine
from repro.sim.fastpath import fast_simulate

_CALIB_N = 20_000
_ROUNDS = 5


def _per_call(fn, n=_CALIB_N) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def test_disabled_tracing_overhead(emit):
    assert not tracing_enabled()

    def _traced():
        with trace("bench", a=1):
            pass

    def _timed():
        with stopwatch("bench.obs_calibration"):
            pass

    c = counter("bench.obs_counter")

    per_trace = _per_call(_traced)
    per_stopwatch = _per_call(_timed)
    per_inc = _per_call(c.inc)

    # the reference workload: one vectorized batch replay (the ladder's
    # numpy rung, scaled down so the guard stays tier-1 fast)
    plat = scale_platform(memory_heterogeneous(), 0.5)
    grid = scale_grid(BlockGrid.paper_instance(), 0.3)
    plan = make_scheduler("Hom").plan(plat, grid)
    plan.collect_events = False
    engine = BatchEngine([(plat, plan)])
    token = engine.checkpoint()
    t_batch = float("inf")
    for _ in range(_ROUNDS):
        engine.restore(token)
        t0 = time.perf_counter()
        engine.run()
        t_batch = min(t_batch, time.perf_counter() - t0)

    t_fast = float("inf")
    for _ in range(_ROUNDS):
        t0 = time.perf_counter()
        fast_simulate(plat, plan, grid)
        t_fast = min(t_fast, time.perf_counter() - t0)

    # instrument sites crossed per run of each workload: BatchEngine.run
    # opens one span + one stopwatch + one counter lookup/inc;
    # fast_simulate crosses one counter and one stopwatch.
    per_site = per_trace + per_stopwatch + per_inc
    batch_overhead = per_site / t_batch
    fast_overhead = per_site / t_fast

    lines = [
        "obs_overhead: disabled-instrumentation cost vs simulation work",
        f"  trace() enter/exit : {per_trace * 1e9:8.1f} ns/call",
        f"  stopwatch()        : {per_stopwatch * 1e9:8.1f} ns/call",
        f"  counter.inc()      : {per_inc * 1e9:8.1f} ns/call",
        f"  batch run          : {t_batch * 1e3:8.2f} ms  "
        f"(overhead {batch_overhead:.4%})",
        f"  fast_simulate      : {t_fast * 1e3:8.2f} ms  "
        f"(overhead {fast_overhead:.4%})",
    ]
    emit(
        "obs_overhead",
        "\n".join(lines),
        data={
            "trace_ns": per_trace * 1e9,
            "stopwatch_ns": per_stopwatch * 1e9,
            "counter_inc_ns": per_inc * 1e9,
            "batch_seconds": t_batch,
            "fast_seconds": t_fast,
            "batch_overhead": batch_overhead,
            "fast_overhead": fast_overhead,
        },
    )
    # the contract from docs/architecture.md: instrumentation on a hot
    # path must cost < 2% of the work it wraps, tracing disabled
    assert batch_overhead < 0.02, (per_site, t_batch)
    assert fast_overhead < 0.02, (per_site, t_fast)
