"""Section 3: communication-to-computation bounds and the max re-use CCR.

Paper series: lower bound sqrt(27/(8m)) (improving sqrt(1/(8m)) by
3*sqrt(3)); max re-use achieves 2/t + 2/mu -> 2/sqrt(m), within
sqrt(32/27) ~ 1.09 of the bound and sqrt(3) better than Toledo's layout.
The benchmark also *measures* the CCR by simulating the single-worker
algorithm and checks it equals the formula.
"""

from repro.core.blocks import BlockGrid
from repro.core.layout import max_reuse_mu
from repro.platform.model import Platform, Worker
from repro.schedulers.single_worker import MaxReuseSingleWorker
from repro.theory.bounds import ccr_lower_bound, toledo_ccr_lower_bound
from repro.theory.ccr import (
    max_reuse_ccr,
    measured_ccr,
    optimality_gap,
    toledo_ccr,
)

MEMORIES = [21, 93, 453, 5242, 20971]  # mu = 4, 9, 20, 71, 143 (plain layout)
T = 100


def _table() -> str:
    lines = [
        "Section 3 bounds (block transfers per block update, t = 100)",
        f"{'m':>7}{'mu':>5}{'bound 27/8m':>13}{'old 1/8m':>10}{'max-reuse':>11}"
        f"{'toledo':>9}{'measured':>10}{'gap':>7}",
    ]
    for m in MEMORIES:
        mu = max_reuse_mu(m)
        grid = BlockGrid(r=mu, t=T, s=2 * mu)
        plat = Platform([Worker(0, 1.0, 1.0, m)])
        res = MaxReuseSingleWorker().run(plat, grid, collect_events=False)
        lines.append(
            f"{m:>7}{mu:>5}{ccr_lower_bound(m):>13.5f}{toledo_ccr_lower_bound(m):>10.5f}"
            f"{max_reuse_ccr(m, T):>11.5f}{toledo_ccr(m, T):>9.5f}"
            f"{measured_ccr(res):>10.5f}{optimality_gap(m):>7.3f}"
        )
    lines.append("paper: gap -> sqrt(32/27) = 1.089; toledo/max-reuse -> sqrt(3)")
    return "\n".join(lines)


def test_bounds_table(benchmark, emit):
    text = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit("theory_bounds", text)
    for m in MEMORIES:
        mu = max_reuse_mu(m)
        grid = BlockGrid(r=mu, t=T, s=2 * mu)
        plat = Platform([Worker(0, 1.0, 1.0, m)])
        res = MaxReuseSingleWorker().run(plat, grid, collect_events=False)
        got = measured_ccr(res)
        want = max_reuse_ccr(m, T)
        assert abs(got - want) < 1e-12
        assert got > ccr_lower_bound(m)
